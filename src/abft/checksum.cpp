#include "abft/checksum.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "abft/kernels.hpp"
#include "common/executor.hpp"

namespace abftc::abft {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void check_blocking(const Matrix& a, std::size_t nb) {
  ABFTC_REQUIRE(nb > 0, "block size must be positive");
  ABFTC_REQUIRE(a.rows() % nb == 0 && a.cols() % nb == 0,
                "matrix dimensions must be multiples of the block size");
}

/// Under the naive policy the builders stay serial — it is the reference
/// path benches time against.
unsigned checksum_threads() noexcept {
  const KernelPolicy& pol = kernel_policy();
  return pol.path == KernelPath::blocked ? pol.threads : 1;
}

common::Dispatch checksum_dispatch() noexcept {
  return kernel_policy().dispatch;
}

}  // namespace

RecoveryStats& RecoveryStats::operator+=(const RecoveryStats& o) noexcept {
  blocks_recovered += o.blocks_recovered;
  values_recovered += o.values_recovered;
  seconds += o.seconds;
  recoveries += o.recoveries;
  return *this;
}

std::size_t group_count(std::size_t blocks, std::size_t group) {
  ABFTC_REQUIRE(group > 0, "group size must be positive");
  ABFTC_REQUIRE(blocks % group == 0,
                "block count must be a multiple of the group size");
  return blocks / group;
}

Matrix row_group_checksums(const Matrix& a, std::size_t nb,
                           std::size_t group) {
  check_blocking(a, nb);
  const std::size_t nbr = a.rows() / nb;
  const std::size_t groups = group_count(nbr, group);
  Matrix cs(groups * nb, a.cols(), 0.0);
  // Each worker owns whole output rows of cs and sums its group members in
  // ascending block-row order, so the result is bitwise-identical for every
  // thread count.
  common::parallel_for(
      groups * nb,
      [&](std::size_t gr) {
        const std::size_t g = gr / nb;
        const std::size_t r = gr % nb;
        for (std::size_t bi = g * group; bi < (g + 1) * group; ++bi)
          for (std::size_t j = 0; j < a.cols(); ++j)
            cs(gr, j) += a(bi * nb + r, j);
      },
      checksum_threads(), checksum_dispatch());
  return cs;
}

Matrix row_group_weighted_checksums(const Matrix& a, std::size_t nb,
                                    std::size_t group) {
  check_blocking(a, nb);
  const std::size_t nbr = a.rows() / nb;
  const std::size_t groups = group_count(nbr, group);
  Matrix cs(groups * nb, a.cols(), 0.0);
  // Same ownership scheme as row_group_checksums: whole output rows, members
  // summed in ascending block-row order — bitwise-identical for every thread
  // count. The weight (m+1) is an exact small integer in double.
  common::parallel_for(
      groups * nb,
      [&](std::size_t gr) {
        const std::size_t g = gr / nb;
        const std::size_t r = gr % nb;
        for (std::size_t bi = g * group; bi < (g + 1) * group; ++bi) {
          const double w = static_cast<double>(bi - g * group + 1);
          for (std::size_t j = 0; j < a.cols(); ++j)
            cs(gr, j) += w * a(bi * nb + r, j);
        }
      },
      checksum_threads(), checksum_dispatch());
  return cs;
}

Matrix col_group_checksums(const Matrix& a, std::size_t nb,
                           std::size_t group) {
  check_blocking(a, nb);
  const std::size_t nbc = a.cols() / nb;
  const std::size_t groups = group_count(nbc, group);
  Matrix cs(a.rows(), groups * nb, 0.0);
  // Workers own whole rows of cs; per-element summation order is fixed.
  common::parallel_for(
      a.rows(),
      [&](std::size_t i) {
        for (std::size_t bj = 0; bj < nbc; ++bj) {
          const std::size_t g = bj / group;
          for (std::size_t c = 0; c < nb; ++c)
            cs(i, g * nb + c) += a(i, bj * nb + c);
        }
      },
      checksum_threads(), checksum_dispatch());
  return cs;
}

double row_checksum_residual(const Matrix& a, const Matrix& cs, std::size_t nb,
                             std::size_t group) {
  const Matrix fresh = row_group_checksums(a, nb, group);
  return max_abs_diff(fresh, cs);
}

double col_checksum_residual(const Matrix& a, const Matrix& cs, std::size_t nb,
                             std::size_t group) {
  const Matrix fresh = col_group_checksums(a, nb, group);
  return max_abs_diff(fresh, cs);
}

void kill_rank_blocks(Matrix& a, std::size_t nb, const ProcessGrid& grid,
                      std::size_t rank) {
  check_blocking(a, nb);
  const std::size_t nbr = a.rows() / nb;
  const std::size_t nbc = a.cols() / nb;
  for (const auto& [bi, bj] : blocks_of_rank(grid, rank, nbr, nbc))
    fill(a.view().block(bi * nb, bj * nb, nb, nb), kNaN);
}

bool has_nan(ConstMatrixView v) noexcept {
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j)
      if (std::isnan(v(i, j))) return true;
  return false;
}

namespace {

/// Shared implementation: recover all blocks of `rank`, iterating the lost
/// blocks and subtracting surviving group members from the checksum.
/// `by_rows` selects row-group vs column-group arithmetic.
RecoveryStats recover_impl(Matrix& a, const Matrix& cs, std::size_t nb,
                           std::size_t group, const ProcessGrid& grid,
                           std::size_t rank, bool by_rows) {
  check_blocking(a, nb);
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t nbr = a.rows() / nb;
  const std::size_t nbc = a.cols() / nb;
  RecoveryStats stats;
  stats.recoveries = 1;

  for (const auto& [bi, bj] : blocks_of_rank(grid, rank, nbr, nbc)) {
    MatrixView lost = a.view().block(bi * nb, bj * nb, nb, nb);
    if (!has_nan(lost)) continue;  // already recovered or never lost
    const std::size_t g = (by_rows ? bi : bj) / group;
    // Start from the checksum block.
    for (std::size_t r = 0; r < nb; ++r)
      for (std::size_t c = 0; c < nb; ++c)
        lost(r, c) = by_rows ? cs(g * nb + r, bj * nb + c)
                             : cs(bi * nb + r, g * nb + c);
    // Subtract the surviving members of the group.
    const std::size_t first = g * group;
    for (std::size_t member = first; member < first + group; ++member) {
      const std::size_t mi = by_rows ? member : bi;
      const std::size_t mj = by_rows ? bj : member;
      if ((by_rows ? mi : mj) == (by_rows ? bi : bj)) continue;
      ConstMatrixView other =
          a.view().block(mi * nb, mj * nb, nb, nb);
      if (has_nan(other))
        throw unrecoverable_error(
            "two lost blocks share a checksum group: single-failure "
            "protection cannot reconstruct them");
      for (std::size_t r = 0; r < nb; ++r)
        for (std::size_t c = 0; c < nb; ++c) lost(r, c) -= other(r, c);
    }
    ++stats.blocks_recovered;
    stats.values_recovered += nb * nb;
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace

RecoveryStats recover_rank_from_row_checksums(Matrix& a, const Matrix& cs,
                                              std::size_t nb,
                                              std::size_t group,
                                              const ProcessGrid& grid,
                                              std::size_t rank) {
  return recover_impl(a, cs, nb, group, grid, rank, /*by_rows=*/true);
}

RecoveryStats recover_rank_from_col_checksums(Matrix& a, const Matrix& cs,
                                              std::size_t nb,
                                              std::size_t group,
                                              const ProcessGrid& grid,
                                              std::size_t rank) {
  return recover_impl(a, cs, nb, group, grid, rank, /*by_rows=*/false);
}

}  // namespace abftc::abft

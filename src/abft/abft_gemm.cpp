#include "abft/abft_gemm.hpp"

#include "abft/blas.hpp"

namespace abftc::abft {

AbftGemm::AbftGemm(Matrix a, Matrix b, std::size_t nb, ProcessGrid grid)
    : a_(std::move(a)), b_(std::move(b)), nb_(nb), grid_(grid) {
  grid_.validate();
  ABFTC_REQUIRE(a_.cols() == b_.rows(), "inner dimensions must match");
  ABFTC_REQUIRE(a_.rows() % nb == 0 && a_.cols() % nb == 0 &&
                    b_.cols() % nb == 0,
                "dimensions must be multiples of the block size");
  ABFTC_REQUIRE((a_.rows() / nb) % grid_.prows == 0,
                "row block count must be a multiple of the grid rows");
  ABFTC_REQUIRE((b_.cols() / nb) % grid_.pcols == 0,
                "column block count must be a multiple of the grid columns");
  a_cs_ = row_group_checksums(a_, nb_, grid_.prows);
  b_cs_ = col_group_checksums(b_, nb_, grid_.pcols);
}

Matrix AbftGemm::multiply(std::optional<InjectedFault> fault) {
  const std::size_t m = a_.rows();
  const std::size_t n = b_.cols();
  const std::size_t kb = a_.cols() / nb_;
  recovery_ = RecoveryStats{};

  c_ = Matrix::zeros(m, n);
  c_row_cs_ = Matrix::zeros(a_cs_.rows(), n);
  c_col_cs_ = Matrix::zeros(m, b_cs_.cols());

  if (fault) {
    ABFTC_REQUIRE(fault->at_step <= kb, "fault step out of range");
    ABFTC_REQUIRE(fault->dead_rank < grid_.size(), "dead rank out of range");
  }

  for (std::size_t step = 0; step <= kb; ++step) {
    if (fault && fault->at_step == step) inject_and_recover(fault->dead_rank);
    if (step == kb) break;
    const std::size_t off = step * nb_;
    // C += A(:, step) · B(step, :), and the same outer product applied to
    // the running checksums keeps their invariants exact.
    ConstMatrixView a_col = a_.block(0, off, m, nb_);
    ConstMatrixView b_row = b_.block(off, 0, nb_, n);
    gemm(1.0, a_col, Trans::No, b_row, Trans::No, 1.0, c_.view());
    gemm(1.0, a_cs_.block(0, off, a_cs_.rows(), nb_), Trans::No, b_row,
         Trans::No, 1.0, c_row_cs_.view());
    gemm(1.0, a_col, Trans::No, b_cs_.block(off, 0, nb_, b_cs_.cols()),
         Trans::No, 1.0, c_col_cs_.view());
  }
  return c_;
}

void AbftGemm::inject_and_recover(std::size_t dead_rank) {
  // The failure wipes the rank's share of every distributed payload.
  kill_rank_blocks(a_, nb_, grid_, dead_rank);
  kill_rank_blocks(b_, nb_, grid_, dead_rank);
  kill_rank_blocks(c_, nb_, grid_, dead_rank);
  // Rebuild from checksums: A and B from their static encodings, the
  // partial C from its running row-group checksums.
  recovery_ += recover_rank_from_row_checksums(a_, a_cs_, nb_, grid_.prows,
                                               grid_, dead_rank);
  recovery_ += recover_rank_from_col_checksums(b_, b_cs_, nb_, grid_.pcols,
                                               grid_, dead_rank);
  recovery_ += recover_rank_from_row_checksums(c_, c_row_cs_, nb_,
                                               grid_.prows, grid_, dead_rank);
}

double AbftGemm::result_checksum_residual() const {
  ABFTC_REQUIRE(!c_.empty(), "multiply() has not been run");
  const double r1 = row_checksum_residual(c_, c_row_cs_, nb_, grid_.prows);
  const double r2 = col_checksum_residual(c_, c_col_cs_, nb_, grid_.pcols);
  return std::max(r1, r2);
}

}  // namespace abftc::abft

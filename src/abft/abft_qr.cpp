#include "abft/abft_qr.hpp"

#include <chrono>

#include "abft/blas.hpp"

namespace abftc::abft {

AbftQr::AbftQr(Matrix a, std::size_t nb, ProcessGrid grid)
    : a_(std::move(a)), nb_(nb), grid_(grid) {
  grid_.validate();
  ABFTC_REQUIRE(a_.rows() == a_.cols(), "AbftQr expects a square matrix");
  ABFTC_REQUIRE(nb > 0 && a_.rows() % nb == 0,
                "dimension must be a multiple of the block size");
  nbk_ = a_.rows() / nb_;
  ABFTC_REQUIRE(nbk_ % grid_.pcols == 0,
                "block count must be a multiple of the grid columns");
  active_cs_ = col_group_checksums(a_, nb_, grid_.pcols);
  frozen_cs_ = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
  taus_.resize(nbk_);
  wy_.resize(nbk_);
}

AbftQr::~AbftQr() = default;

void AbftQr::drop_wy_cache() noexcept {
  for (auto& wy : wy_) wy.reset();
}

void AbftQr::factor(const std::vector<Fault>& faults) {
  recovery_ = RecoveryStats{};
  std::size_t next_fault = 0;
  for (std::size_t k = 0; k <= nbk_; ++k) {
    // Faults with the same step are simultaneous: all ranks die before any
    // reconstruction begins (the hard case for checksum protection).
    std::size_t batch_end = next_fault;
    while (batch_end < faults.size() && faults[batch_end].at_step == k) {
      ABFTC_REQUIRE(faults[batch_end].dead_rank < grid_.size(),
                    "dead rank out of range");
      kill_rank_blocks(a_, nb_, grid_, faults[batch_end].dead_rank);
      ++batch_end;
    }
    for (; next_fault < batch_end; ++next_fault)
      recover_rank(k, faults[next_fault].dead_rank);
    if (k == nbk_) break;
    step(k);
  }
  ABFTC_REQUIRE(next_fault == faults.size(),
                "faults must be sorted by step and within range");
}

void AbftQr::step(std::size_t k) {
  const std::size_t n = a_.rows();
  const std::size_t off = k * nb_;
  const std::size_t rest = n - off - nb_;
  const std::size_t g = k / grid_.pcols;

  // Remove the panel's block column (pre-step values) from the active sums.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < nb_; ++c)
      active_cs_(i, g * nb_ + c) -= a_(i, off + c);

  // (a) Panel factorization on rows off.., column block k.
  MatrixView panel = a_.block(off, off, n - off, nb_);
  geqr2(panel, taus_[k]);

  // (b) Apply the panel's reflectors to the trailing columns and to the
  //     active checksum columns (identical left multiplications). When the
  //     trailing update takes the compact-WY path, build the V/T operator
  //     once and reuse it for the checksum columns — same panel, same
  //     factors.
  MatrixView cs = active_cs_.block(off, 0, n - off, active_cs_.cols());
  if (rest > 0 &&
      qr_apply_uses_blocked_path(n - off, rest, taus_[k].size())) {
    // Cache the V/T operator: the panel's V columns are frozen from here
    // on, so apply_q / apply_q_transpose can reuse it verbatim.
    wy_[k] = std::make_unique<CompactWy>(panel, taus_[k]);
    wy_[k]->apply_left(a_.block(off, off + nb_, n - off, rest));
    wy_[k]->apply_left(cs);
  } else {
    if (rest > 0)
      apply_reflectors_left(panel, taus_[k],
                            a_.block(off, off + nb_, n - off, rest));
    apply_reflectors_left(panel, taus_[k], cs);
  }

  // Freeze the finalized panel columns.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < nb_; ++c)
      frozen_cs_(i, g * nb_ + c) += a_(i, off + c);
  frozen_steps_ = k + 1;
}

void AbftQr::recover_rank(std::size_t k, std::size_t dead_rank) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryStats stats;
  stats.recoveries = 1;

  for (const auto& [bi, bj] : blocks_of_rank(grid_, dead_rank, nbk_, nbk_)) {
    MatrixView lost = a_.view().block(bi * nb_, bj * nb_, nb_, nb_);
    if (!has_nan(lost)) continue;
    const bool frozen = bj < k;
    // A recovered frozen block rewrites part of panel bj's stored V with
    // its checksum reconstruction (exact to the protection model, not
    // bitwise the original values): drop the cached operator so later
    // Q applications rebuild from what the matrix actually holds.
    if (frozen && bj < wy_.size()) wy_[bj].reset();
    const Matrix& cs = frozen ? frozen_cs_ : active_cs_;
    const std::size_t g = bj / grid_.pcols;
    for (std::size_t r = 0; r < nb_; ++r)
      for (std::size_t c = 0; c < nb_; ++c)
        lost(r, c) = cs(bi * nb_ + r, g * nb_ + c);
    const std::size_t first = g * grid_.pcols;
    for (std::size_t mj = first; mj < first + grid_.pcols; ++mj) {
      if (mj == bj) continue;
      if ((mj < k) != frozen) continue;
      ConstMatrixView other = a_.view().block(bi * nb_, mj * nb_, nb_, nb_);
      if (has_nan(other))
        throw unrecoverable_error(
            "two lost block columns share a checksum group");
      for (std::size_t r = 0; r < nb_; ++r)
        for (std::size_t c = 0; c < nb_; ++c) lost(r, c) -= other(r, c);
    }
    ++stats.blocks_recovered;
    stats.values_recovered += nb_ * nb_;
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  recovery_ += stats;
}

Matrix AbftQr::apply_q_transpose(const Matrix& x) const {
  ABFTC_REQUIRE(x.rows() == a_.rows(), "row count mismatch");
  Matrix out = x;
  const std::size_t n = a_.rows();
  for (std::size_t k = 0; k < frozen_steps_; ++k) {
    const std::size_t off = k * nb_;
    MatrixView target = out.block(off, 0, n - off, out.cols());
    // The cached operator is exactly what the blocked dispatch would
    // rebuild (same panel, same taus), so results are bitwise identical —
    // it only skips the per-application form_t. Consult the dispatcher
    // first: if the active policy routes this shape to the reference
    // loops, honor that (the cache must never change which path runs).
    if (wy_[k] &&
        qr_apply_uses_blocked_path(n - off, out.cols(), taus_[k].size()))
      wy_[k]->apply_left(target);
    else
      apply_reflectors_left(a_.block(off, off, n - off, nb_), taus_[k],
                            target);
  }
  return out;
}

Matrix AbftQr::apply_q(const Matrix& x) const {
  ABFTC_REQUIRE(x.rows() == a_.rows(), "row count mismatch");
  Matrix out = x;
  const std::size_t n = a_.rows();
  // Q = H_0 H_1 … H_{last}: panels in reverse order, and within a panel the
  // reverse-order applicator (compact-WY with the untransposed T on the
  // blocked path; the reference loops visit reflectors last-first). Each H
  // is symmetric (H = Hᵀ), so reusing the left application is exact.
  for (std::size_t k = frozen_steps_; k-- > 0;) {
    const std::size_t off = k * nb_;
    MatrixView target = out.block(off, 0, n - off, out.cols());
    if (wy_[k] &&
        qr_apply_uses_blocked_path(n - off, out.cols(), taus_[k].size()))
      wy_[k]->apply_left_reverse(target);
    else
      apply_reflectors_left_reverse(a_.block(off, off, n - off, nb_),
                                    taus_[k], target);
  }
  return out;
}

double AbftQr::checksum_residual() const {
  Matrix expect_active = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
  Matrix expect_frozen = Matrix::zeros(frozen_cs_.rows(), frozen_cs_.cols());
  const std::size_t n = a_.rows();
  for (std::size_t bj = 0; bj < nbk_; ++bj) {
    Matrix& target = (bj < frozen_steps_) ? expect_frozen : expect_active;
    const std::size_t g = bj / grid_.pcols;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < nb_; ++c)
        target(i, g * nb_ + c) += a_(i, bj * nb_ + c);
  }
  return std::max(max_abs_diff(expect_active, active_cs_),
                  max_abs_diff(expect_frozen, frozen_cs_));
}

void plain_blocked_qr(Matrix& a, std::size_t nb) {
  ABFTC_REQUIRE(a.rows() == a.cols(), "QR expects a square matrix");
  ABFTC_REQUIRE(nb > 0 && a.rows() % nb == 0,
                "dimension must be a multiple of the block size");
  const std::size_t n = a.rows();
  std::vector<double> tau;
  for (std::size_t off = 0; off < n; off += nb) {
    MatrixView panel = a.block(off, off, n - off, nb);
    geqr2(panel, tau);
    const std::size_t rest = n - off - nb;
    if (rest > 0)
      apply_reflectors_left(panel, tau, a.block(off, off + nb, n - off, rest));
  }
}

}  // namespace abftc::abft

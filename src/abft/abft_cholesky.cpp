#include "abft/abft_cholesky.hpp"

#include <chrono>

#include "abft/blas.hpp"

namespace abftc::abft {

AbftCholesky::AbftCholesky(Matrix a, std::size_t nb, ProcessGrid grid)
    : a_(std::move(a)), nb_(nb), grid_(grid) {
  grid_.validate();
  ABFTC_REQUIRE(a_.rows() == a_.cols(), "Cholesky expects a square matrix");
  ABFTC_REQUIRE(nb > 0 && a_.rows() % nb == 0,
                "dimension must be a multiple of the block size");
  nbk_ = a_.rows() / nb_;
  ABFTC_REQUIRE(nbk_ % grid_.prows == 0,
                "block count must be a multiple of the grid rows");
  active_cs_ = row_group_checksums(a_, nb_, grid_.prows);
  frozen_cs_ = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
}

void AbftCholesky::factor(const std::vector<Fault>& faults) {
  recovery_ = RecoveryStats{};
  std::size_t next_fault = 0;
  for (std::size_t k = 0; k <= nbk_; ++k) {
    // Faults with the same step are simultaneous: all ranks die before any
    // reconstruction begins (the hard case for checksum protection).
    std::size_t batch_end = next_fault;
    while (batch_end < faults.size() && faults[batch_end].at_step == k) {
      ABFTC_REQUIRE(faults[batch_end].dead_rank < grid_.size(),
                    "dead rank out of range");
      kill_rank_blocks(a_, nb_, grid_, faults[batch_end].dead_rank);
      ++batch_end;
    }
    for (; next_fault < batch_end; ++next_fault)
      recover_rank(k, faults[next_fault].dead_rank);
    if (k == nbk_) break;
    step(k);
  }
  ABFTC_REQUIRE(next_fault == faults.size(),
                "faults must be sorted by step and within range");
}

void AbftCholesky::step(std::size_t k) {
  const std::size_t n = a_.rows();
  const std::size_t off = k * nb_;
  const std::size_t rest = n - off - nb_;
  const std::size_t g = k / grid_.prows;
  const std::size_t csr = active_cs_.rows();

  // Remove the pivot block row (pre-step values) from the active sums.
  for (std::size_t r = 0; r < nb_; ++r)
    for (std::size_t j = 0; j < n; ++j)
      active_cs_(g * nb_ + r, j) -= a_(off + r, j);

  // (a) Factor the diagonal block; mirror Lᵀ into its upper part so the
  //     full-square trailing state stays well defined.
  MatrixView diag = a_.block(off, off, nb_, nb_);
  potf2_lower(diag);
  for (std::size_t r = 0; r < nb_; ++r)
    for (std::size_t c = r + 1; c < nb_; ++c) diag(r, c) = diag(c, r);

  if (rest > 0) {
    // (b) Panel: L21 = A21 · L_kk^{-T}; identical transform on the active
    //     checksum columns of this block column.
    MatrixView panel = a_.block(off + nb_, off, rest, nb_);
    trsm_right_lower_trans(diag, panel);
    trsm_right_lower_trans(diag, active_cs_.block(0, off, csr, nb_));

    // Mirror L21ᵀ into the pivot block row (columns j > k).
    for (std::size_t r = 0; r < nb_; ++r)
      for (std::size_t j = 0; j < rest; ++j)
        a_(off + r, off + nb_ + j) = panel(j, r);

    // (c) Symmetric trailing update on the full square:
    //     S <- S − L21·L21ᵀ, carried onto the active checksums.
    gemm(-1.0, panel, Trans::No, panel, Trans::Yes, 1.0,
         a_.block(off + nb_, off + nb_, rest, rest));
    gemm(-1.0, active_cs_.block(0, off, csr, nb_), Trans::No, panel,
         Trans::Yes, 1.0, active_cs_.block(0, off + nb_, csr, rest));
  }

  // Freeze the finalized pivot block row.
  for (std::size_t r = 0; r < nb_; ++r)
    for (std::size_t j = 0; j < n; ++j)
      frozen_cs_(g * nb_ + r, j) += a_(off + r, j);
  frozen_steps_ = k + 1;
}

void AbftCholesky::recover_rank(std::size_t k, std::size_t dead_rank) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryStats stats;
  stats.recoveries = 1;

  for (const auto& [bi, bj] : blocks_of_rank(grid_, dead_rank, nbk_, nbk_)) {
    MatrixView lost = a_.view().block(bi * nb_, bj * nb_, nb_, nb_);
    if (!has_nan(lost)) continue;
    const bool frozen = bi < k;
    const Matrix& cs = frozen ? frozen_cs_ : active_cs_;
    const std::size_t g = bi / grid_.prows;
    for (std::size_t r = 0; r < nb_; ++r)
      for (std::size_t c = 0; c < nb_; ++c)
        lost(r, c) = cs(g * nb_ + r, bj * nb_ + c);
    const std::size_t first = g * grid_.prows;
    for (std::size_t mi = first; mi < first + grid_.prows; ++mi) {
      if (mi == bi) continue;
      if ((mi < k) != frozen) continue;
      ConstMatrixView other = a_.view().block(mi * nb_, bj * nb_, nb_, nb_);
      if (has_nan(other))
        throw unrecoverable_error(
            "two lost block rows share a checksum group");
      for (std::size_t r = 0; r < nb_; ++r)
        for (std::size_t c = 0; c < nb_; ++c) lost(r, c) -= other(r, c);
    }
    ++stats.blocks_recovered;
    stats.values_recovered += nb_ * nb_;
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  recovery_ += stats;
}

Matrix AbftCholesky::reconstruct_product() const {
  const std::size_t n = a_.rows();
  Matrix prod(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p <= j; ++p) s += a_(i, p) * a_(j, p);
      prod(i, j) = s;
      prod(j, i) = s;
    }
  return prod;
}

double AbftCholesky::checksum_residual() const {
  Matrix expect_active = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
  Matrix expect_frozen = Matrix::zeros(frozen_cs_.rows(), frozen_cs_.cols());
  const std::size_t n = a_.rows();
  for (std::size_t bi = 0; bi < nbk_; ++bi) {
    Matrix& target = (bi < frozen_steps_) ? expect_frozen : expect_active;
    const std::size_t g = bi / grid_.prows;
    for (std::size_t r = 0; r < nb_; ++r)
      for (std::size_t j = 0; j < n; ++j)
        target(g * nb_ + r, j) += a_(bi * nb_ + r, j);
  }
  return std::max(max_abs_diff(expect_active, active_cs_),
                  max_abs_diff(expect_frozen, frozen_cs_));
}

void plain_blocked_cholesky(Matrix& a, std::size_t nb) {
  ABFTC_REQUIRE(a.rows() == a.cols(), "Cholesky expects a square matrix");
  ABFTC_REQUIRE(nb > 0 && a.rows() % nb == 0,
                "dimension must be a multiple of the block size");
  const std::size_t n = a.rows();
  for (std::size_t off = 0; off < n; off += nb) {
    const std::size_t rest = n - off - nb;
    MatrixView diag = a.block(off, off, nb, nb);
    potf2_lower(diag);
    if (rest == 0) break;
    MatrixView panel = a.block(off + nb, off, rest, nb);
    trsm_right_lower_trans(diag, panel);
    gemm(-1.0, panel, Trans::No, panel, Trans::Yes, 1.0,
         a.block(off + nb, off + nb, rest, rest));
  }
}

}  // namespace abftc::abft

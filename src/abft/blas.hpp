#pragma once
/// \file blas.hpp
/// The dense kernels the ABFT factorizations need, written against matrix
/// views. Every entry point dispatches on the active KernelPolicy (see
/// kernels.hpp): large shapes route to the packed, cache-blocked,
/// multithreaded path; small shapes and the `naive` policy keep the original
/// reference loops. Both paths agree to rounding (≤ 1e-10 max-abs on unit
/// random inputs) and each is deterministic for a fixed path. On non-finite
/// inputs the paths may diverge (the reference loops skip exact-zero A
/// terms, so 0·Inf never materializes there; the packed path follows IEEE
/// semantics) — run recovery before the kernels, as the ABFT drivers do.

#include "abft/kernels.hpp"
#include "abft/matrix.hpp"

namespace abftc::abft {

/// C ← α·op(A)·op(B) + β·C.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c);

/// Convenience: C ← C − A·B (the trailing-update shape).
void gemm_sub(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// B ← B · U⁻¹ with U upper triangular, non-unit diagonal.
void trsm_right_upper(ConstMatrixView u, MatrixView b);

/// B ← L⁻¹ · B with L lower triangular, *unit* diagonal.
void trsm_left_lower_unit(ConstMatrixView l, MatrixView b);

/// B ← B · L⁻ᵀ with L lower triangular, non-unit diagonal (Cholesky panel).
void trsm_right_lower_trans(ConstMatrixView l, MatrixView b);

/// Unblocked LU without pivoting, in place: A ← L\U (unit lower + upper).
/// Throws invariant_error on a (near-)zero pivot.
void getf2_nopiv(MatrixView a);

/// Unblocked Cholesky, lower, in place on the lower triangle.
/// Throws invariant_error if the matrix is not positive definite.
void potf2_lower(MatrixView a);

/// Unblocked Householder QR: on return the upper triangle of `a` holds R and
/// the columns below the diagonal hold the Householder vectors v (v0 = 1
/// implicit); tau[j] is the reflector coefficient of column j.
void geqr2(MatrixView a, std::vector<double>& tau);

/// Apply the reflectors of (v, tau) — as produced by geqr2 on a panel of
/// `k = tau.size()` columns — to C from the left, factorization order
/// (H_0 first): C ← H_{k-1}·…·H_0·C. Dispatches on the active KernelPolicy:
/// large targets route through the compact-WY blocked applicator, small
/// targets and the `naive` policy keep the reference loops.
void apply_reflectors_left(ConstMatrixView v_panel,
                           const std::vector<double>& tau, MatrixView c);

/// Same operator applied in reverse reflector order (H_{k-1} first):
/// C ← H_0·…·H_{k-1}·C — what applying Q (rather than Qᵀ) per panel needs.
/// Dispatches like apply_reflectors_left.
void apply_reflectors_left_reverse(ConstMatrixView v_panel,
                                   const std::vector<double>& tau,
                                   MatrixView c);

/// The reference one-reflector-at-a-time application, explicitly — the
/// ground truth the blocked path is tested against.
void apply_reflectors_left_reference(ConstMatrixView v_panel,
                                     const std::vector<double>& tau,
                                     MatrixView c);

/// Accumulate the compact-WY triangular factor of a geqr2 panel (LAPACK
/// `larft`, forward columnwise): H_0·H_1·…·H_{k-1} = I − V·T·Vᵀ with T
/// upper triangular, k = tau.size(), V the unit lower-trapezoidal reflector
/// columns stored below the panel diagonal. `t` must be k×k; columns with
/// tau[j] == 0 are zeroed (H_j = I drops out of the product exactly).
void form_t(ConstMatrixView v_panel, const std::vector<double>& tau,
            MatrixView t);

/// Compact-WY blocked application, explicitly (LAPACK `larfb` shape): the
/// same operator as apply_reflectors_left, C ← H_{k-1}·…·H_0·C
/// = (I − V·Tᵀ·Vᵀ)·C, computed as three GEMM calls — W ← Vᵀ·C, W ← Tᵀ·W,
/// C ← C − V·W — so the O(m·n·k) work runs on the packed, register-tiled,
/// multithreaded path. Agrees with the reference loops to rounding and is
/// bitwise-deterministic across worker counts (the GEMMs are).
void apply_reflectors_blocked_left(ConstMatrixView v_panel,
                                   const std::vector<double>& tau,
                                   MatrixView c);

/// The materialized compact-WY operator of a geqr2 panel: the unit
/// lower-trapezoidal V (the stored panel's upper triangle holds R and is
/// masked out) plus the `form_t` factor, built once and reusable across
/// several targets of the same panel — AbftQr applies each panel to both
/// the trailing matrix and the checksum columns, and rebuilding V/T per
/// target would repeat the O(m·k²) accumulation for no new information.
class CompactWy {
 public:
  /// Requires at least one reflector (the dispatcher never routes k < 2).
  CompactWy(ConstMatrixView v_panel, const std::vector<double>& tau);

  /// C ← H_{k-1}·…·H_0·C (the factorization order).
  void apply_left(MatrixView c) const { apply(c, Trans::Yes); }
  /// C ← H_0·…·H_{k-1}·C (the Q-application order).
  void apply_left_reverse(MatrixView c) const { apply(c, Trans::No); }

 private:
  void apply(MatrixView c, Trans t_trans) const;

  Matrix v_;  // m × k, unit lower-trapezoidal
  Matrix t_;  // k × k, upper triangular
};

/// True when the dispatcher would route a k-reflector application to an
/// m×n target through the compact-WY blocked path under the active policy
/// (exposed so tests can assert the cutover, like gemm_uses_blocked_path).
[[nodiscard]] bool qr_apply_uses_blocked_path(std::size_t m, std::size_t n,
                                              std::size_t k) noexcept;

/// y ← A·x (helper for solve verification).
void gemv(ConstMatrixView a, const std::vector<double>& x,
          std::vector<double>& y);

/// Solve L·U·x = b given the compact L\U factor (no pivoting).
[[nodiscard]] std::vector<double> lu_solve(const Matrix& lu,
                                           std::vector<double> b);

/// Solve L·Lᵀ·x = b given the Cholesky factor in the lower triangle.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& l,
                                                 std::vector<double> b);

}  // namespace abftc::abft

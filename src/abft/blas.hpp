#pragma once
/// \file blas.hpp
/// The dense kernels the ABFT factorizations need, written against matrix
/// views. Every entry point dispatches on the active KernelPolicy (see
/// kernels.hpp): large shapes route to the packed, cache-blocked,
/// multithreaded path; small shapes and the `naive` policy keep the original
/// reference loops. Both paths agree to rounding (≤ 1e-10 max-abs on unit
/// random inputs) and each is deterministic for a fixed path. On non-finite
/// inputs the paths may diverge (the reference loops skip exact-zero A
/// terms, so 0·Inf never materializes there; the packed path follows IEEE
/// semantics) — run recovery before the kernels, as the ABFT drivers do.

#include "abft/kernels.hpp"
#include "abft/matrix.hpp"

namespace abftc::abft {

/// C ← α·op(A)·op(B) + β·C.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c);

/// Convenience: C ← C − A·B (the trailing-update shape).
void gemm_sub(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// B ← B · U⁻¹ with U upper triangular, non-unit diagonal.
void trsm_right_upper(ConstMatrixView u, MatrixView b);

/// B ← L⁻¹ · B with L lower triangular, *unit* diagonal.
void trsm_left_lower_unit(ConstMatrixView l, MatrixView b);

/// B ← B · L⁻ᵀ with L lower triangular, non-unit diagonal (Cholesky panel).
void trsm_right_lower_trans(ConstMatrixView l, MatrixView b);

/// Unblocked LU without pivoting, in place: A ← L\U (unit lower + upper).
/// Throws invariant_error on a (near-)zero pivot.
void getf2_nopiv(MatrixView a);

/// Unblocked Cholesky, lower, in place on the lower triangle.
/// Throws invariant_error if the matrix is not positive definite.
void potf2_lower(MatrixView a);

/// Unblocked Householder QR: on return the upper triangle of `a` holds R and
/// the columns below the diagonal hold the Householder vectors v (v0 = 1
/// implicit); tau[j] is the reflector coefficient of column j.
void geqr2(MatrixView a, std::vector<double>& tau);

/// Apply the reflectors of (v, tau) — as produced by geqr2 on a panel of
/// `k = tau.size()` columns — to C from the left: C ← (I − τ v vᵀ)…·C.
void apply_reflectors_left(ConstMatrixView v_panel,
                           const std::vector<double>& tau, MatrixView c);

/// y ← A·x (helper for solve verification).
void gemv(ConstMatrixView a, const std::vector<double>& x,
          std::vector<double>& y);

/// Solve L·U·x = b given the compact L\U factor (no pivoting).
[[nodiscard]] std::vector<double> lu_solve(const Matrix& lu,
                                           std::vector<double> b);

/// Solve L·Lᵀ·x = b given the Cholesky factor in the lower triangle.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& l,
                                                 std::vector<double> b);

}  // namespace abftc::abft

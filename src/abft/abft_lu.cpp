#include "abft/abft_lu.hpp"

#include <chrono>
#include <cmath>

#include "abft/blas.hpp"

namespace abftc::abft {

AbftLu::AbftLu(Matrix a, std::size_t nb, ProcessGrid grid)
    : a_(std::move(a)), nb_(nb), grid_(grid) {
  grid_.validate();
  ABFTC_REQUIRE(a_.rows() == a_.cols(), "LU expects a square matrix");
  ABFTC_REQUIRE(nb > 0 && a_.rows() % nb == 0,
                "dimension must be a multiple of the block size");
  nbk_ = a_.rows() / nb_;
  ABFTC_REQUIRE(nbk_ % grid_.prows == 0,
                "block count must be a multiple of the grid rows");
  active_cs_ = row_group_checksums(a_, nb_, grid_.prows);
  frozen_cs_ = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
  wactive_cs_ = row_group_weighted_checksums(a_, nb_, grid_.prows);
  wfrozen_cs_ = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
}

void AbftLu::factor(const std::vector<Fault>& faults) {
  recovery_ = RecoveryStats{};
  std::size_t next_fault = 0;
  for (std::size_t k = 0; k <= nbk_; ++k) {
    // Faults with the same step are simultaneous: all ranks die before any
    // reconstruction begins (the hard case for checksum protection).
    std::size_t batch_end = next_fault;
    while (batch_end < faults.size() && faults[batch_end].at_step == k) {
      ABFTC_REQUIRE(faults[batch_end].dead_rank < grid_.size(),
                    "dead rank out of range");
      kill_rank_blocks(a_, nb_, grid_, faults[batch_end].dead_rank);
      ++batch_end;
    }
    for (; next_fault < batch_end; ++next_fault)
      recover_rank(k, faults[next_fault].dead_rank);
    if (k == nbk_) break;
    step(k);
  }
  ABFTC_REQUIRE(next_fault == faults.size(),
                "faults must be sorted by step and within range");
}

void AbftLu::step(std::size_t k) {
  const std::size_t n = a_.rows();
  const std::size_t off = k * nb_;
  const std::size_t rest = n - off - nb_;
  const std::size_t g = k / grid_.prows;
  const std::size_t csr = active_cs_.rows();

  // The pivot block row's weight inside its checksum group. Every operation
  // below is linear in rows, so the weighted accumulators stay consistent by
  // receiving the identical transformations as the sum accumulators.
  const double w = static_cast<double>(k % grid_.prows + 1);

  // The pivot block row leaves the active set: remove its pre-step values
  // from the active accumulator (they are re-added, post-factorization, to
  // the frozen accumulator at the end of the step).
  for (std::size_t r = 0; r < nb_; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      active_cs_(g * nb_ + r, j) -= a_(off + r, j);
      wactive_cs_(g * nb_ + r, j) -= w * a_(off + r, j);
    }

  // (a) Factor the diagonal block.
  MatrixView diag = a_.block(off, off, nb_, nb_);
  getf2_nopiv(diag);

  // (b) U block row: A(k, j>k) <- L_kk^{-1} A(k, j>k).
  if (rest > 0)
    trsm_left_lower_unit(diag, a_.block(off, off + nb_, nb_, rest));

  // (c) L block column: A(i>k, k) <- A(i>k, k) U_kk^{-1}; the active
  //     checksums receive the identical transformation.
  if (rest > 0)
    trsm_right_upper(diag, a_.block(off + nb_, off, rest, nb_));
  trsm_right_upper(diag, active_cs_.block(0, off, csr, nb_));
  trsm_right_upper(diag, wactive_cs_.block(0, off, csr, nb_));

  // (d) Trailing update A(i>k, j>k) -= A(i>k, k) · A(k, j>k), applied to the
  //     payload and to the active checksums alike.
  if (rest > 0) {
    gemm_sub(a_.block(off + nb_, off, rest, nb_),
             a_.block(off, off + nb_, nb_, rest),
             a_.block(off + nb_, off + nb_, rest, rest));
    gemm_sub(active_cs_.block(0, off, csr, nb_),
             a_.block(off, off + nb_, nb_, rest),
             active_cs_.block(0, off + nb_, csr, rest));
    gemm_sub(wactive_cs_.block(0, off, csr, nb_),
             a_.block(off, off + nb_, nb_, rest),
             wactive_cs_.block(0, off + nb_, csr, rest));
  }

  // Freeze the finalized pivot block row into the frozen accumulators.
  for (std::size_t r = 0; r < nb_; ++r)
    for (std::size_t j = 0; j < n; ++j) {
      frozen_cs_(g * nb_ + r, j) += a_(off + r, j);
      wfrozen_cs_(g * nb_ + r, j) += w * a_(off + r, j);
    }
  frozen_steps_ = k + 1;
}

void AbftLu::recover_rank(std::size_t k, std::size_t dead_rank) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryStats stats;
  stats.recoveries = 1;

  for (const auto& [bi, bj] : blocks_of_rank(grid_, dead_rank, nbk_, nbk_)) {
    MatrixView lost = a_.view().block(bi * nb_, bj * nb_, nb_, nb_);
    if (!has_nan(lost)) continue;
    const bool frozen = bi < k;
    const Matrix& cs = frozen ? frozen_cs_ : active_cs_;
    const std::size_t g = bi / grid_.prows;
    // lost = cs_g − Σ other group members with the same frozen/active state.
    for (std::size_t r = 0; r < nb_; ++r)
      for (std::size_t c = 0; c < nb_; ++c)
        lost(r, c) = cs(g * nb_ + r, bj * nb_ + c);
    const std::size_t first = g * grid_.prows;
    for (std::size_t mi = first; mi < first + grid_.prows; ++mi) {
      if (mi == bi) continue;
      if ((mi < k) != frozen) continue;  // other accumulator covers it
      ConstMatrixView other = a_.view().block(mi * nb_, bj * nb_, nb_, nb_);
      if (has_nan(other))
        throw unrecoverable_error(
            "two lost block rows share a checksum group");
      for (std::size_t r = 0; r < nb_; ++r)
        for (std::size_t c = 0; c < nb_; ++c) lost(r, c) -= other(r, c);
    }
    ++stats.blocks_recovered;
    stats.values_recovered += nb_ * nb_;
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  recovery_ += stats;
}

Matrix AbftLu::reconstruct_product() const {
  const std::size_t n = a_.rows();
  Matrix prod(n, n, 0.0);
  // prod = L · U with L unit-lower and U upper from the compact factor.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = (i <= j) ? a_(i, j) : 0.0;  // L(i,i)=1 times U(i,j)
      const std::size_t kmax = std::min(i, j + 1);
      for (std::size_t p = 0; p < kmax; ++p) s += a_(i, p) * a_(p, j);
      prod(i, j) = s;
    }
  return prod;
}

double AbftLu::checksum_residual() const {
  // Recompute all four accumulators from the payload and compare.
  Matrix expect_active = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
  Matrix expect_frozen = Matrix::zeros(frozen_cs_.rows(), frozen_cs_.cols());
  Matrix expect_wactive = Matrix::zeros(active_cs_.rows(), active_cs_.cols());
  Matrix expect_wfrozen = Matrix::zeros(frozen_cs_.rows(), frozen_cs_.cols());
  const std::size_t n = a_.rows();
  for (std::size_t bi = 0; bi < nbk_; ++bi) {
    const bool frozen = bi < frozen_steps_;
    Matrix& target = frozen ? expect_frozen : expect_active;
    Matrix& wtarget = frozen ? expect_wfrozen : expect_wactive;
    const std::size_t g = bi / grid_.prows;
    const double w = static_cast<double>(bi % grid_.prows + 1);
    for (std::size_t r = 0; r < nb_; ++r)
      for (std::size_t j = 0; j < n; ++j) {
        target(g * nb_ + r, j) += a_(bi * nb_ + r, j);
        wtarget(g * nb_ + r, j) += w * a_(bi * nb_ + r, j);
      }
  }
  return std::max(std::max(max_abs_diff(expect_active, active_cs_),
                           max_abs_diff(expect_frozen, frozen_cs_)),
                  std::max(max_abs_diff(expect_wactive, wactive_cs_),
                           max_abs_diff(expect_wfrozen, wfrozen_cs_)));
}

void plain_blocked_lu(Matrix& a, std::size_t nb) {
  ABFTC_REQUIRE(a.rows() == a.cols(), "LU expects a square matrix");
  ABFTC_REQUIRE(nb > 0 && a.rows() % nb == 0,
                "dimension must be a multiple of the block size");
  const std::size_t n = a.rows();
  for (std::size_t off = 0; off < n; off += nb) {
    const std::size_t rest = n - off - nb;
    MatrixView diag = a.block(off, off, nb, nb);
    getf2_nopiv(diag);
    if (rest == 0) break;
    trsm_left_lower_unit(diag, a.block(off, off + nb, nb, rest));
    trsm_right_upper(diag, a.block(off + nb, off, rest, nb));
    gemm_sub(a.block(off + nb, off, rest, nb),
             a.block(off, off + nb, nb, rest),
             a.block(off + nb, off + nb, rest, rest));
  }
}

}  // namespace abftc::abft

#include "abft/grid.hpp"

namespace abftc::abft {

std::vector<std::pair<std::size_t, std::size_t>> blocks_of_rank(
    const ProcessGrid& grid, std::size_t rank, std::size_t nbr,
    std::size_t nbc) {
  grid.validate();
  ABFTC_REQUIRE(rank < grid.size(), "rank out of range");
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t bi = grid.grid_row(rank); bi < nbr; bi += grid.prows)
    for (std::size_t bj = grid.grid_col(rank); bj < nbc; bj += grid.pcols)
      out.emplace_back(bi, bj);
  return out;
}

}  // namespace abftc::abft

#include "abft/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

#include "common/executor.hpp"
#include "common/topology.hpp"

namespace abftc::abft {

namespace {

KernelPolicy g_policy{};

// Blocking parameters (doubles): the packed A panel (kMc × kKc) targets L2,
// the packed B panel (kKc × kNc) streams through L3, and the register tile
// is sized to keep the micro-kernel FMA-bound on the widest ISA available:
// 8 × 16 in zmm registers (16 accumulators of 32) with AVX-512, 6 × 8 in
// ymm registers (12 accumulators of 16, the classic AVX2 dgemm shape)
// otherwise.
#if defined(__AVX512F__)
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 16;
constexpr std::size_t kMc = 128;
constexpr std::size_t kKc = 192;
#else
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 8;
constexpr std::size_t kMc = 96;
constexpr std::size_t kKc = 256;
#endif
constexpr std::size_t kNc = 2048;

// Below this flop count the packing overhead beats the cache savings and the
// dispatcher keeps the reference loops.
constexpr std::size_t kBlockedFlopCutoff = 32 * 32 * 32;

/// 64-byte-aligned scratch for the packed panels: keeps every 32-byte B-row
/// load inside one cache line (std::vector's 16-byte alignment splits half
/// of them).
class AlignedBuf {
 public:
  explicit AlignedBuf(std::size_t count)
      : p_(static_cast<double*>(::operator new[](
            count * sizeof(double), std::align_val_t{64}))) {}
  ~AlignedBuf() { ::operator delete[](p_, std::align_val_t{64}); }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  [[nodiscard]] double* data() noexcept { return p_; }

 private:
  double* p_;
};

/// Reusable per-thread A-panel scratch, sized for the largest (mc × pc)
/// panel once and kept for the thread's lifetime. Allocation reserves
/// address space only; the first pack_a *writes* are what place the pages —
/// on a pinned worker that first touch lands them on the worker's own NUMA
/// node, which is the whole point of packing A worker-side.
double* thread_apack() {
  // kMc is a multiple of kMr, so kMc·kKc bounds every padded panel.
  thread_local AlignedBuf buf(kMc * kKc);
  return buf.data();
}

/// Per-node replicas of the packed B panel for one (jc, pc0) iteration.
/// The caller's copy (packed by pack_b) is always ready; the first worker
/// to run on another node claims that node's replica slot, memcpys the
/// caller's copy into node-local pages, and publishes it. Workers that
/// lose the claim race or arrive before the copy is published simply read
/// the caller's copy — never wait. Since every replica is a byte-identical
/// copy, which one a micro-kernel reads can never change results.
class BReplicaSet {
 public:
  BReplicaSet(unsigned nodes, std::size_t capacity)
      : capacity_(capacity), slots_(nodes) {}

  /// Invalidate all replicas for a new packed payload of `bytes` bytes.
  /// Must be called before the loop that uses them is dispatched (the loop
  /// publication is the happens-before edge to the workers).
  void reset(std::size_t bytes) {
    bytes_ = bytes;
    for (auto& s : slots_) {
      s.claimed.store(false, std::memory_order_relaxed);
      s.ready.store(false, std::memory_order_relaxed);
    }
  }

  /// The panel pointer a worker on `node` should read: its node's replica
  /// when available (claiming and copying it if this worker is first), the
  /// caller's `src` otherwise.
  const double* panel_for(unsigned node, const double* src) {
    if (node >= slots_.size()) return src;
    Slot& s = slots_[node];
    if (s.ready.load(std::memory_order_acquire)) return s.buf->data();
    if (!s.claimed.exchange(true, std::memory_order_acq_rel)) {
      if (!s.buf) s.buf = std::make_unique<AlignedBuf>(capacity_);
      std::memcpy(s.buf->data(), src, bytes_);
      s.ready.store(true, std::memory_order_release);
      return s.buf->data();
    }
    return src;
  }

 private:
  struct Slot {
    std::unique_ptr<AlignedBuf> buf;  // lazily allocated, first-touch local
    std::atomic<bool> claimed{false};
    std::atomic<bool> ready{false};
  };
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::vector<Slot> slots_;
};

inline double op_at(ConstMatrixView m, Trans t, std::size_t i, std::size_t j) {
  return t == Trans::No ? m(i, j) : m(j, i);
}

// β-scale of C outside the fused epilogue. The naive path and the blocked
// path's degenerate no-product shapes share it so the β semantics cannot
// diverge across the dispatch cutover: β == 0 overwrites, never reads.
void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j) c(i, j) = 0.0;
  } else {
    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j) c(i, j) *= beta;
  }
}

/// Pack op(A)(i0:i0+mc, p0:p0+pc) into micro-row-panel order: panel `ir`
/// holds rows [ir·MR, ir·MR+MR) stored column-by-column (p-major), zero-padded
/// to a full MR so the micro-kernel never branches on the row edge.
void pack_a(ConstMatrixView a, Trans ta, double alpha, std::size_t i0,
            std::size_t mc, std::size_t p0, std::size_t pc, double* buf) {
  for (std::size_t ir = 0; ir < mc; ir += kMr) {
    const std::size_t mr = std::min(kMr, mc - ir);
    for (std::size_t p = 0; p < pc; ++p) {
      for (std::size_t i = 0; i < mr; ++i)
        buf[p * kMr + i] = alpha * op_at(a, ta, i0 + ir + i, p0 + p);
      for (std::size_t i = mr; i < kMr; ++i) buf[p * kMr + i] = 0.0;
    }
    buf += pc * kMr;
  }
}

/// Pack op(B)(p0:p0+pc, j0:j0+nc) into micro-column-panel order: panel `jr`
/// holds columns [jr·NR, jr·NR+NR) stored row-by-row (p-major), zero-padded
/// to a full NR.
void pack_b(ConstMatrixView b, Trans tb, std::size_t p0, std::size_t pc,
            std::size_t j0, std::size_t nc, double* buf) {
  for (std::size_t jr = 0; jr < nc; jr += kNr) {
    const std::size_t nr = std::min(kNr, nc - jr);
    if (tb == Trans::No && nr == kNr) {
      // Contiguous rows of B: copy straight runs.
      for (std::size_t p = 0; p < pc; ++p) {
        const double* src = b.data() + (p0 + p) * b.ld() + (j0 + jr);
        double* dst = buf + p * kNr;
        for (std::size_t j = 0; j < kNr; ++j) dst[j] = src[j];
      }
    } else {
      for (std::size_t p = 0; p < pc; ++p) {
        for (std::size_t j = 0; j < nr; ++j)
          buf[p * kNr + j] = op_at(b, tb, p0 + p, j0 + jr + j);
        for (std::size_t j = nr; j < kNr; ++j) buf[p * kNr + j] = 0.0;
      }
    }
    buf += pc * kNr;
  }
}

/// C(0:mr, 0:nr) ← β·C + Σ_p ap[p·MR + i] · bp[p·NR + j]. The accumulators
/// live in registers for the whole kc loop; the packed panels are read once
/// each. β is applied in the store-back epilogue — the caller passes the
/// gemm-level β on the first kc pass and 1.0 on the rest, which fuses the
/// scale into the pass that touches C anyway (no standalone C sweep).
/// β == 0 is a BLAS-style fast path that never reads C; β ∉ {0, 1} fuses
/// scale and accumulate (FMA where the ISA has it). Each element takes the
/// same path on every run, so results stay bitwise-deterministic for a
/// fixed build regardless of worker count.
#if defined(__AVX512F__)
void micro_kernel(std::size_t pc, const double* ap, const double* bp,
                  double* c, std::size_t ldc, std::size_t mr, std::size_t nr,
                  double beta) {
  static_assert(kMr == 8 && kNr == 16, "kernel is written for an 8x16 tile");
  // 16 accumulator zmm registers + 2 B registers + 1 broadcast of 32.
  __m512d c0a = _mm512_setzero_pd(), c0b = _mm512_setzero_pd();
  __m512d c1a = _mm512_setzero_pd(), c1b = _mm512_setzero_pd();
  __m512d c2a = _mm512_setzero_pd(), c2b = _mm512_setzero_pd();
  __m512d c3a = _mm512_setzero_pd(), c3b = _mm512_setzero_pd();
  __m512d c4a = _mm512_setzero_pd(), c4b = _mm512_setzero_pd();
  __m512d c5a = _mm512_setzero_pd(), c5b = _mm512_setzero_pd();
  __m512d c6a = _mm512_setzero_pd(), c6b = _mm512_setzero_pd();
  __m512d c7a = _mm512_setzero_pd(), c7b = _mm512_setzero_pd();
  const double* a = ap;
  const double* b = bp;
  for (std::size_t p = 0; p < pc; ++p, a += kMr, b += kNr) {
    const __m512d b0 = _mm512_load_pd(b);
    const __m512d b1 = _mm512_load_pd(b + 8);
    __m512d ai = _mm512_set1_pd(a[0]);
    c0a = _mm512_fmadd_pd(ai, b0, c0a);
    c0b = _mm512_fmadd_pd(ai, b1, c0b);
    ai = _mm512_set1_pd(a[1]);
    c1a = _mm512_fmadd_pd(ai, b0, c1a);
    c1b = _mm512_fmadd_pd(ai, b1, c1b);
    ai = _mm512_set1_pd(a[2]);
    c2a = _mm512_fmadd_pd(ai, b0, c2a);
    c2b = _mm512_fmadd_pd(ai, b1, c2b);
    ai = _mm512_set1_pd(a[3]);
    c3a = _mm512_fmadd_pd(ai, b0, c3a);
    c3b = _mm512_fmadd_pd(ai, b1, c3b);
    ai = _mm512_set1_pd(a[4]);
    c4a = _mm512_fmadd_pd(ai, b0, c4a);
    c4b = _mm512_fmadd_pd(ai, b1, c4b);
    ai = _mm512_set1_pd(a[5]);
    c5a = _mm512_fmadd_pd(ai, b0, c5a);
    c5b = _mm512_fmadd_pd(ai, b1, c5b);
    ai = _mm512_set1_pd(a[6]);
    c6a = _mm512_fmadd_pd(ai, b0, c6a);
    c6b = _mm512_fmadd_pd(ai, b1, c6b);
    ai = _mm512_set1_pd(a[7]);
    c7a = _mm512_fmadd_pd(ai, b0, c7a);
    c7b = _mm512_fmadd_pd(ai, b1, c7b);
  }
  if (mr == kMr && nr == kNr) {
    const __m512d rows[kMr][2] = {{c0a, c0b}, {c1a, c1b}, {c2a, c2b},
                                  {c3a, c3b}, {c4a, c4b}, {c5a, c5b},
                                  {c6a, c6b}, {c7a, c7b}};
    double* r = c;
    if (beta == 1.0) {
      for (std::size_t i = 0; i < kMr; ++i, r += ldc) {
        _mm512_storeu_pd(r, _mm512_add_pd(_mm512_loadu_pd(r), rows[i][0]));
        _mm512_storeu_pd(r + 8,
                         _mm512_add_pd(_mm512_loadu_pd(r + 8), rows[i][1]));
      }
    } else if (beta == 0.0) {
      for (std::size_t i = 0; i < kMr; ++i, r += ldc) {
        _mm512_storeu_pd(r, rows[i][0]);
        _mm512_storeu_pd(r + 8, rows[i][1]);
      }
    } else {
      const __m512d bv = _mm512_set1_pd(beta);
      for (std::size_t i = 0; i < kMr; ++i, r += ldc) {
        _mm512_storeu_pd(
            r, _mm512_fmadd_pd(bv, _mm512_loadu_pd(r), rows[i][0]));
        _mm512_storeu_pd(
            r + 8, _mm512_fmadd_pd(bv, _mm512_loadu_pd(r + 8), rows[i][1]));
      }
    }
    return;
  }
  alignas(64) double acc[kMr][kNr];
  _mm512_store_pd(acc[0], c0a);
  _mm512_store_pd(acc[0] + 8, c0b);
  _mm512_store_pd(acc[1], c1a);
  _mm512_store_pd(acc[1] + 8, c1b);
  _mm512_store_pd(acc[2], c2a);
  _mm512_store_pd(acc[2] + 8, c2b);
  _mm512_store_pd(acc[3], c3a);
  _mm512_store_pd(acc[3] + 8, c3b);
  _mm512_store_pd(acc[4], c4a);
  _mm512_store_pd(acc[4] + 8, c4b);
  _mm512_store_pd(acc[5], c5a);
  _mm512_store_pd(acc[5] + 8, c5b);
  _mm512_store_pd(acc[6], c6a);
  _mm512_store_pd(acc[6] + 8, c6b);
  _mm512_store_pd(acc[7], c7a);
  _mm512_store_pd(acc[7] + 8, c7b);
  if (beta == 1.0) {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  } else if (beta == 0.0) {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  } else {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j)
        c[i * ldc + j] = beta * c[i * ldc + j] + acc[i][j];
  }
}
#elif defined(__AVX2__) && defined(__FMA__)
void micro_kernel(std::size_t pc, const double* ap, const double* bp,
                  double* c, std::size_t ldc, std::size_t mr, std::size_t nr,
                  double beta) {
  static_assert(kMr == 6 && kNr == 8, "kernel is written for a 6x8 tile");
  // 12 accumulator ymm registers + 2 B registers + 1 broadcast = 15 of 16.
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  __m256d c40 = _mm256_setzero_pd(), c41 = _mm256_setzero_pd();
  __m256d c50 = _mm256_setzero_pd(), c51 = _mm256_setzero_pd();
  const double* a = ap;
  const double* b = bp;
  for (std::size_t p = 0; p < pc; ++p, a += kMr, b += kNr) {
    const __m256d b0 = _mm256_loadu_pd(b);
    const __m256d b1 = _mm256_loadu_pd(b + 4);
    __m256d ai = _mm256_broadcast_sd(a + 0);
    c00 = _mm256_fmadd_pd(ai, b0, c00);
    c01 = _mm256_fmadd_pd(ai, b1, c01);
    ai = _mm256_broadcast_sd(a + 1);
    c10 = _mm256_fmadd_pd(ai, b0, c10);
    c11 = _mm256_fmadd_pd(ai, b1, c11);
    ai = _mm256_broadcast_sd(a + 2);
    c20 = _mm256_fmadd_pd(ai, b0, c20);
    c21 = _mm256_fmadd_pd(ai, b1, c21);
    ai = _mm256_broadcast_sd(a + 3);
    c30 = _mm256_fmadd_pd(ai, b0, c30);
    c31 = _mm256_fmadd_pd(ai, b1, c31);
    ai = _mm256_broadcast_sd(a + 4);
    c40 = _mm256_fmadd_pd(ai, b0, c40);
    c41 = _mm256_fmadd_pd(ai, b1, c41);
    ai = _mm256_broadcast_sd(a + 5);
    c50 = _mm256_fmadd_pd(ai, b0, c50);
    c51 = _mm256_fmadd_pd(ai, b1, c51);
  }
  if (mr == kMr && nr == kNr) {
    const __m256d rows[kMr][2] = {{c00, c01}, {c10, c11}, {c20, c21},
                                  {c30, c31}, {c40, c41}, {c50, c51}};
    double* r = c;
    if (beta == 1.0) {
      for (std::size_t i = 0; i < kMr; ++i, r += ldc) {
        _mm256_storeu_pd(r, _mm256_add_pd(_mm256_loadu_pd(r), rows[i][0]));
        _mm256_storeu_pd(r + 4,
                         _mm256_add_pd(_mm256_loadu_pd(r + 4), rows[i][1]));
      }
    } else if (beta == 0.0) {
      for (std::size_t i = 0; i < kMr; ++i, r += ldc) {
        _mm256_storeu_pd(r, rows[i][0]);
        _mm256_storeu_pd(r + 4, rows[i][1]);
      }
    } else {
      const __m256d bv = _mm256_set1_pd(beta);
      for (std::size_t i = 0; i < kMr; ++i, r += ldc) {
        _mm256_storeu_pd(r,
                         _mm256_fmadd_pd(bv, _mm256_loadu_pd(r), rows[i][0]));
        _mm256_storeu_pd(
            r + 4, _mm256_fmadd_pd(bv, _mm256_loadu_pd(r + 4), rows[i][1]));
      }
    }
    return;
  }
  alignas(32) double acc[kMr][kNr];
  _mm256_store_pd(acc[0], c00);
  _mm256_store_pd(acc[0] + 4, c01);
  _mm256_store_pd(acc[1], c10);
  _mm256_store_pd(acc[1] + 4, c11);
  _mm256_store_pd(acc[2], c20);
  _mm256_store_pd(acc[2] + 4, c21);
  _mm256_store_pd(acc[3], c30);
  _mm256_store_pd(acc[3] + 4, c31);
  _mm256_store_pd(acc[4], c40);
  _mm256_store_pd(acc[4] + 4, c41);
  _mm256_store_pd(acc[5], c50);
  _mm256_store_pd(acc[5] + 4, c51);
  if (beta == 1.0) {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  } else if (beta == 0.0) {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  } else {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j)
        c[i * ldc + j] = beta * c[i * ldc + j] + acc[i][j];
  }
}
#else
void micro_kernel(std::size_t pc, const double* ap, const double* bp,
                  double* c, std::size_t ldc, std::size_t mr, std::size_t nr,
                  double beta) {
  double acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < pc; ++p) {
    const double* a = ap + p * kMr;
    const double* b = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const double ai = a[i];
      for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += ai * b[j];
    }
  }
  if (beta == 1.0) {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  } else if (beta == 0.0) {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  } else {
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j)
        c[i * ldc + j] = beta * c[i * ldc + j] + acc[i][j];
  }
}
#endif

}  // namespace

GemmShape gemm_shape(ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
                     MatrixView c) {
  GemmShape s{};
  s.m = (ta == Trans::No) ? a.rows() : a.cols();
  s.k = (ta == Trans::No) ? a.cols() : a.rows();
  const std::size_t kb = (tb == Trans::No) ? b.rows() : b.cols();
  s.n = (tb == Trans::No) ? b.cols() : b.rows();
  ABFTC_REQUIRE(s.k == kb, "gemm inner dimensions must match");
  ABFTC_REQUIRE(c.rows() == s.m && c.cols() == s.n,
                "gemm output shape mismatch");
  return s;
}

const KernelPolicy& kernel_policy() noexcept { return g_policy; }

void set_kernel_policy(KernelPolicy p) noexcept {
  g_policy = p;
  // The pinning opt-in lives on the executor (it owns the worker threads);
  // the policy is the single knob users flip, so propagate it here.
  common::Executor::global().set_worker_pinning(p.numa_pin);
}

unsigned resolved_threads(const KernelPolicy& p) noexcept {
  return common::effective_threads(p.threads);
}

bool gemm_uses_blocked_path(std::size_t m, std::size_t n,
                            std::size_t k) noexcept {
  return g_policy.path == KernelPath::blocked &&
         m * n * k >= kBlockedFlopCutoff;
}

void naive_gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                Trans tb, double beta, MatrixView c) {
  const auto [m, n, k] = gemm_shape(a, ta, b, tb, c);

  scale_c(beta, c);

  if (ta == Trans::No && tb == Trans::No) {
    // ikj order: stream through rows of B for row-major locality.
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = alpha * a(i, p);
        if (aip == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) c(i, j) += aip * b(p, j);
      }
  } else if (ta == Trans::No && tb == Trans::Yes) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += a(i, p) * b(j, p);
        c(i, j) += alpha * s;
      }
  } else if (ta == Trans::Yes && tb == Trans::No) {
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t i = 0; i < m; ++i) {
        const double api = alpha * a(p, i);
        if (api == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) c(i, j) += api * b(p, j);
      }
  } else {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += a(p, i) * b(j, p);
        c(i, j) += alpha * s;
      }
  }
}

void blocked_gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                  Trans tb, double beta, MatrixView c, unsigned threads,
                  common::Dispatch dispatch) {
  const auto [m, n, k] = gemm_shape(a, ta, b, tb, c);

  // The β-scale is fused into the first kc pass of the micro-kernel (the
  // pass touches every C tile anyway, so the standalone C sweep is a whole
  // memory pass saved on every β ≠ 1 call). Only the degenerate no-product
  // shapes, where no pass runs, scale C here.
  if (alpha == 0.0 || k == 0) {
    scale_c(beta, c);
    return;
  }

  const std::size_t ic_panels = (m + kMc - 1) / kMc;
  const std::size_t bpack_cols = (std::min(n, kNc) + kNr - 1) / kNr * kNr;
  AlignedBuf bpack(kKc * bpack_cols);

  // NUMA-aware packing (opt-in, pool dispatch only): with pinned workers on
  // a multi-node machine, the shared packed B panel is replicated once per
  // node so the kc-loop streams it from local memory instead of one socket.
  // A-panels need nothing extra: each worker packs into its own thread-local
  // scratch, already first-touch local.
  const auto topo = common::Topology::system();
  const bool replicate_b = dispatch == common::Dispatch::Pool &&
                           common::Executor::global().worker_pinning() &&
                           !topo->single_node();
  std::unique_ptr<BReplicaSet> replicas;
  if (replicate_b)
    replicas = std::make_unique<BReplicaSet>(topo->node_count(),
                                             kKc * bpack_cols);

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc0 = 0; pc0 < k; pc0 += kKc) {
      const std::size_t pc = std::min(kKc, k - pc0);
      // Each C element is visited by exactly one jc block, once per kc pass;
      // the first pass carries the β-scale, later passes accumulate.
      const double pass_beta = (pc0 == 0) ? beta : 1.0;
      pack_b(b, tb, pc0, pc, jc, nc, bpack.data());
      const std::size_t packed_b_doubles = ((nc + kNr - 1) / kNr) * pc * kNr;
      if (replicas) replicas->reset(packed_b_doubles * sizeof(double));

      // Row panels of C are disjoint, so each worker owns its output rows:
      // the accumulation order per element is fixed and results are
      // bitwise-identical across thread counts — and across B replicas,
      // which are byte-identical copies.
      common::parallel_for(
          ic_panels,
          [&](std::size_t ic) {
            const std::size_t i0 = ic * kMc;
            const std::size_t mc = std::min(kMc, m - i0);
            double* const apack = thread_apack();
            pack_a(a, ta, alpha, i0, mc, pc0, pc, apack);
            const double* bpanel = bpack.data();
            if (replicas)
              bpanel = replicas->panel_for(
                  common::Executor::current_numa_node(), bpack.data());
            for (std::size_t jr = 0; jr < nc; jr += kNr) {
              const std::size_t nr = std::min(kNr, nc - jr);
              const double* bp = bpanel + (jr / kNr) * pc * kNr;
              for (std::size_t ir = 0; ir < mc; ir += kMr) {
                const std::size_t mr = std::min(kMr, mc - ir);
                micro_kernel(pc, apack + (ir / kMr) * pc * kMr, bp,
                             &c(i0 + ir, jc + jr), c.ld(), mr, nr, pass_beta);
              }
            }
          },
          threads, dispatch);
    }
  }
}

}  // namespace abftc::abft

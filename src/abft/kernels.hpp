#pragma once
/// \file kernels.hpp
/// Kernel-path selection for the dense ABFT compute layer.
///
/// The paper's composite-strategy model assumes the protected kernels run at
/// realistic speed (its φ ≈ 1.03 overhead constant is a ratio of *fast*
/// kernel times). Two implementations back every BLAS-level entry point in
/// blas.hpp:
///
///   * `naive`   — the original reference loops; simple, branch-free,
///                 bitwise-stable. The ground truth for equivalence tests.
///   * `blocked` — packed-panel, register-tiled, cache-blocked GEMM with
///                 row-panel multithreading, plus blocked triangular solves
///                 and factorizations that delegate their O(n³) update steps
///                 to that GEMM.
///
/// The active `KernelPolicy` is a process-global knob; benches A/B the two
/// paths and tests pin it with `KernelPolicyGuard`. Results are deterministic
/// for a fixed path regardless of the thread count: work is partitioned so
/// every output element is accumulated by exactly one thread in a fixed
/// order.

#include "abft/matrix.hpp"
#include "common/dispatch.hpp"

namespace abftc::abft {

enum class Trans { No, Yes };

enum class KernelPath { naive, blocked };

struct KernelPolicy {
  KernelPath path = KernelPath::blocked;
  /// Worker threads for the blocked path; 0 = hardware concurrency.
  unsigned threads = 0;
  /// How parallel kernels reach their workers: the persistent executor
  /// (default) or legacy spawn-per-call threads (benches A/B the two;
  /// results are bitwise identical either way).
  common::Dispatch dispatch = common::Dispatch::Pool;
  /// NUMA opt-in: pin executor workers round-robin across the machine's
  /// nodes and place GEMM packing node-locally (each worker's A-panel
  /// scratch is first-touched on its own node; the packed B panel is
  /// replicated once per node instead of read cross-socket). Single-node
  /// machines and the Spawn dispatch ignore it. Placement never changes
  /// results — only where buffers live.
  bool numa_pin = false;
};

/// The worker count `p.threads` resolves to (cached hardware concurrency
/// for 0) — what benches report as the policy's resolved thread count.
[[nodiscard]] unsigned resolved_threads(const KernelPolicy& p) noexcept;

/// The process-global policy consulted by every dispatching kernel.
///
/// Concurrency contract (audited for multi-tenant service use): *reading*
/// the policy — what every kernel dispatch and every concurrent
/// Experiment::run does — is safe from any number of threads. *Mutating*
/// it (set_kernel_policy, KernelPolicyGuard) while kernels run on other
/// threads is undefined: configure the policy at setup time, before
/// serving concurrent work, exactly like evaluator registration
/// (core::EvaluatorRegistry). The built-in model/sim evaluators never
/// touch the kernel layer, so sweep-service traffic does not dispatch
/// through this policy at all unless a custom evaluator does.
[[nodiscard]] const KernelPolicy& kernel_policy() noexcept;
void set_kernel_policy(KernelPolicy p) noexcept;

/// RAII override: installs `p` for the current scope, restores on exit.
class KernelPolicyGuard {
 public:
  explicit KernelPolicyGuard(KernelPolicy p) : saved_(kernel_policy()) {
    set_kernel_policy(p);
  }
  KernelPolicyGuard(const KernelPolicyGuard&) = delete;
  KernelPolicyGuard& operator=(const KernelPolicyGuard&) = delete;
  ~KernelPolicyGuard() { set_kernel_policy(saved_); }

 private:
  KernelPolicy saved_;
};

/// C ← α·op(A)·op(B) + β·C through the packed blocked path, explicitly —
/// bypasses the global policy (used by benches and equivalence tests).
/// `threads == 0` means hardware concurrency. The β-scale is fused into the
/// first kc pass of the micro-kernel (no standalone C sweep); β == 0 follows
/// BLAS semantics on both this and the naive path — C is overwritten, never
/// read, so NaN-poisoned output blocks are not propagated.
void blocked_gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                  Trans tb, double beta, MatrixView c, unsigned threads = 0,
                  common::Dispatch dispatch = common::Dispatch::Pool);

/// The original reference triple loop, explicitly.
void naive_gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                Trans tb, double beta, MatrixView c);

/// True when the dispatcher would route a gemm of this shape to the blocked
/// path under the active policy (exposed so tests can assert the cutover).
[[nodiscard]] bool gemm_uses_blocked_path(std::size_t m, std::size_t n,
                                          std::size_t k) noexcept;

/// Validated (m, n, k) of C ← op(A)·op(B): the single place the
/// transpose-dependent shape derivation lives. Throws on mismatch.
struct GemmShape {
  std::size_t m, n, k;
};
[[nodiscard]] GemmShape gemm_shape(ConstMatrixView a, Trans ta,
                                   ConstMatrixView b, Trans tb, MatrixView c);

}  // namespace abftc::abft

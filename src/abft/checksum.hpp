#pragma once
/// \file checksum.hpp
/// Block-group checksum encodings (Huang & Abraham [7], block-cyclic variant
/// of Du et al. [9]).
///
/// A *row-group* checksum partitions the block rows into groups of P
/// consecutive block rows (P = grid rows). Under 2-D block-cyclic
/// distribution each group contains exactly one block row per grid row, so
/// the death of one rank removes exactly one addend from every group sum —
/// the lost blocks are recovered by subtracting the surviving addends from
/// the checksum. Column-group checksums are the transpose construction with
/// groups of Q block columns.
///
/// Checksum blocks live on the grid's virtual reliable rank (see grid.hpp).

#include <stdexcept>

#include "abft/grid.hpp"
#include "abft/matrix.hpp"

namespace abftc::abft {

/// Thrown when the surviving data + checksums cannot determine the lost
/// blocks (e.g. two dead ranks on the same grid row under row-group-only
/// protection).
class unrecoverable_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Number of row groups for an nbr-block-row matrix with group size P.
[[nodiscard]] std::size_t group_count(std::size_t blocks, std::size_t group);

/// Build row-group checksums: result has group_count(nbr, group) block rows
/// of nb rows each; cs[g] = Σ_{bi ∈ group g} A[bi, :].
/// Requires a.rows() divisible by nb and nbr divisible by group.
/// Parallelized over output rows with kernel_policy().threads workers; the
/// result is bitwise-identical for every thread count.
[[nodiscard]] Matrix row_group_checksums(const Matrix& a, std::size_t nb,
                                         std::size_t group);

/// Column-group checksums: cs[:, g] = Σ_{bj ∈ group g} A[:, bj].
[[nodiscard]] Matrix col_group_checksums(const Matrix& a, std::size_t nb,
                                         std::size_t group);

/// Position-weighted row-group checksums (the second Huang–Abraham relation):
/// cs[g] = Σ_{m=0}^{group-1} (m+1) · A[g·group+m, :]. Together with the
/// unweighted sum this localizes a single corrupted block row — the ratio of
/// the weighted and unweighted residuals is the 1-based position of the
/// victim inside its group. Same shape/threading contract as
/// row_group_checksums.
[[nodiscard]] Matrix row_group_weighted_checksums(const Matrix& a,
                                                  std::size_t nb,
                                                  std::size_t group);

/// Max-abs residual of the row-group checksum invariant (0 when intact).
[[nodiscard]] double row_checksum_residual(const Matrix& a, const Matrix& cs,
                                           std::size_t nb, std::size_t group);
[[nodiscard]] double col_checksum_residual(const Matrix& a, const Matrix& cs,
                                           std::size_t nb, std::size_t group);

/// Wipe (NaN-fill) every block of `a` owned by `rank`.
void kill_rank_blocks(Matrix& a, std::size_t nb, const ProcessGrid& grid,
                      std::size_t rank);

/// Statistics of a completed reconstruction.
struct RecoveryStats {
  std::size_t blocks_recovered = 0;
  std::size_t values_recovered = 0;  ///< doubles reconstructed
  double seconds = 0.0;              ///< wall-clock reconstruction time
  std::size_t recoveries = 0;        ///< number of recovery episodes

  RecoveryStats& operator+=(const RecoveryStats& o) noexcept;
};

/// Recover every block of `a` owned by `rank` from row-group checksums.
/// Throws unrecoverable_error if another group member is also dead (NaN).
RecoveryStats recover_rank_from_row_checksums(Matrix& a, const Matrix& cs,
                                              std::size_t nb,
                                              std::size_t group,
                                              const ProcessGrid& grid,
                                              std::size_t rank);

/// Recover from column-group checksums (transpose construction).
RecoveryStats recover_rank_from_col_checksums(Matrix& a, const Matrix& cs,
                                              std::size_t nb,
                                              std::size_t group,
                                              const ProcessGrid& grid,
                                              std::size_t rank);

/// True if any entry of the view is NaN (a wiped block).
[[nodiscard]] bool has_nan(ConstMatrixView v) noexcept;

}  // namespace abftc::abft

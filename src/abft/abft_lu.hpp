#pragma once
/// \file abft_lu.hpp
/// ABFT-protected right-looking blocked LU factorization (no pivoting; use
/// diagonally dominant inputs), after Du, Bouteiller, Bosilca et al. [9].
///
/// Protection scheme ("dual accumulator" checksums):
///  * `active` row-group checksums cover the not-yet-factored block rows and
///    are carried through every panel/update operation — the same linear row
///    operations applied to the data are applied to the checksums, so the
///    invariant   active_cs[g] = Σ_{i ∈ g, i active} row_i   is exact at
///    every block-step boundary.
///  * When a block row is factored it freezes; its contribution moves from
///    the active accumulator to the `frozen` accumulator
///    (frozen_cs[g] = Σ_{i ∈ g, i frozen} row_i), which thereafter protects
///    the L and U factors at O(n²) total maintenance cost.
///
/// A rank killed at a block-step boundary is reconstructed block-by-block by
/// subtracting the surviving group members from the matching accumulator;
/// the factorization then resumes where it stopped — no work is lost, which
/// is exactly the property the paper's Recons_ABFT term models.

#include <optional>
#include <vector>

#include "abft/checksum.hpp"

namespace abftc::abft {

struct InjectedFault;  // abft_gemm.hpp; redefined here to avoid the include

class AbftLu {
 public:
  struct Fault {
    std::size_t at_step = 0;  ///< inject before block step `at_step`
    std::size_t dead_rank = 0;
  };

  /// A must be square, its dimension a multiple of nb, and the block count a
  /// multiple of the grid row count.
  AbftLu(Matrix a, std::size_t nb, ProcessGrid grid);

  /// Factor in place, optionally injecting rank failures (sorted by step;
  /// at_step == block-count means "after the last step").
  void factor(const std::vector<Fault>& faults = {});

  /// Compact L\U factor (unit lower / upper in one matrix).
  [[nodiscard]] const Matrix& lu() const noexcept { return a_; }

  /// L·U recomputed from the compact factor (verification helper).
  [[nodiscard]] Matrix reconstruct_product() const;

  /// Max-abs residual of all four checksum invariants (sum + weighted,
  /// active + frozen) at the current state (tests assert ~0 at every step
  /// boundary).
  [[nodiscard]] double checksum_residual() const;

  /// The weighted accumulator pair (Huang–Abraham localization relation):
  /// w_cs[g] = Σ_m (m+1)·row_{g·P+m} over the matching frozen/active split.
  /// Maintained through the identical per-step operations as the sum pair,
  /// so the dist runtime's copies must match these bitwise.
  [[nodiscard]] const Matrix& weighted_active_cs() const noexcept {
    return wactive_cs_;
  }
  [[nodiscard]] const Matrix& weighted_frozen_cs() const noexcept {
    return wfrozen_cs_;
  }

  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }

  /// Fraction of extra arithmetic spent maintaining checksums: the active
  /// accumulator adds 1/P worth of rows to every panel and update.
  [[nodiscard]] double overhead_fraction() const noexcept {
    return 1.0 / static_cast<double>(grid_.prows);
  }

  [[nodiscard]] std::size_t block_steps() const noexcept { return nbk_; }

 private:
  void step(std::size_t k);
  void recover_rank(std::size_t k, std::size_t dead_rank);

  Matrix a_;           // n×n working matrix (becomes L\U)
  Matrix active_cs_;   // (groups·nb) × n
  Matrix frozen_cs_;   // (groups·nb) × n
  Matrix wactive_cs_;  // position-weighted twins of the two above
  Matrix wfrozen_cs_;
  std::size_t nb_, nbk_;
  std::size_t frozen_steps_ = 0;  ///< block rows 0..frozen_steps_-1 frozen
  ProcessGrid grid_;
  RecoveryStats recovery_;
};

/// Baseline: plain blocked LU without checksums (for overhead benches).
void plain_blocked_lu(Matrix& a, std::size_t nb);

}  // namespace abftc::abft

#pragma once
/// \file abft_cholesky.hpp
/// ABFT-protected blocked Cholesky factorization (lower, A = L·Lᵀ) with the
/// same dual-accumulator row-group checksum scheme as AbftLu.
///
/// The working matrix is kept fully symmetric (the strictly upper part
/// mirrors the L²¹ panels), which lets the trailing update run as a full
/// square GEMM whose row-linearity carries the checksums exactly. This
/// doubles the update flops versus a triangular SYRK — a deliberate
/// simplicity/fidelity trade-off documented in DESIGN.md: the protection
/// arithmetic and recovery paths are identical to a production triangular
/// implementation.

#include <vector>

#include "abft/checksum.hpp"

namespace abftc::abft {

class AbftCholesky {
 public:
  struct Fault {
    std::size_t at_step = 0;
    std::size_t dead_rank = 0;
  };

  /// A must be symmetric positive definite, dimension a multiple of nb,
  /// block count a multiple of the grid rows.
  AbftCholesky(Matrix a, std::size_t nb, ProcessGrid grid);

  void factor(const std::vector<Fault>& faults = {});

  /// The factor L in the lower triangle (upper holds Lᵀ mirror data).
  [[nodiscard]] const Matrix& factor_matrix() const noexcept { return a_; }

  /// L·Lᵀ recomputed from the lower triangle.
  [[nodiscard]] Matrix reconstruct_product() const;

  [[nodiscard]] double checksum_residual() const;
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }
  [[nodiscard]] std::size_t block_steps() const noexcept { return nbk_; }

 private:
  void step(std::size_t k);
  void recover_rank(std::size_t k, std::size_t dead_rank);

  Matrix a_;
  Matrix active_cs_, frozen_cs_;
  std::size_t nb_, nbk_;
  std::size_t frozen_steps_ = 0;
  ProcessGrid grid_;
  RecoveryStats recovery_;
};

/// Baseline: plain blocked Cholesky (lower) without checksums.
void plain_blocked_cholesky(Matrix& a, std::size_t nb);

}  // namespace abftc::abft

#pragma once
/// \file matrix.hpp
/// Dense double-precision matrices for the ABFT kernels. Row-major owning
/// Matrix plus lightweight strided views so the blocked algorithms can
/// operate on sub-blocks without copies.

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace abftc::abft {

class Matrix;

/// Non-owning mutable view of a sub-block (row-major, leading dimension ld).
class MatrixView {
 public:
  MatrixView(double* data, std::size_t rows, std::size_t cols, std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    ABFTC_REQUIRE(ld >= cols, "leading dimension must cover the row");
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] double* data() const noexcept { return data_; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) const {
    return data_[i * ld_ + j];
  }

  /// Sub-view [r0, r0+nr) × [c0, c0+nc).
  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) const {
    ABFTC_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_,
                  "sub-view out of range");
    return MatrixView(data_ + r0 * ld_ + c0, nr, nc, ld_);
  }

 private:
  double* data_;
  std::size_t rows_, cols_, ld_;
};

/// Non-owning read-only view.
class ConstMatrixView {
 public:
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    ABFTC_REQUIRE(ld >= cols, "leading dimension must cover the row");
  }
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] const double* data() const noexcept { return data_; }

  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[i * ld_ + j];
  }

  [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0,
                                      std::size_t nr, std::size_t nc) const {
    ABFTC_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_,
                  "sub-view out of range");
    return ConstMatrixView(data_ + r0 * ld_ + c0, nr, nc, ld_);
  }

 private:
  const double* data_;
  std::size_t rows_, cols_, ld_;
};

/// Owning row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] MatrixView view() {
    return MatrixView(data_.data(), rows_, cols_, cols_);
  }
  [[nodiscard]] ConstMatrixView view() const {
    return ConstMatrixView(data_.data(), rows_, cols_, cols_);
  }
  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0,
                                      std::size_t nr, std::size_t nc) const {
    return view().block(r0, c0, nr, nc);
  }

  [[nodiscard]] std::vector<double>& storage() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& storage() const noexcept {
    return data_;
  }

  // Generators -------------------------------------------------------------
  [[nodiscard]] static Matrix zeros(std::size_t rows, std::size_t cols);
  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Entries uniform in [-1, 1].
  [[nodiscard]] static Matrix random(std::size_t rows, std::size_t cols,
                                     common::Rng& rng);
  /// Random strictly diagonally dominant matrix (LU without pivoting is
  /// numerically stable on these — the standard ABFT-LU demo class).
  [[nodiscard]] static Matrix diag_dominant(std::size_t n, common::Rng& rng);
  /// Random symmetric positive definite matrix (B·Bᵀ + n·I).
  [[nodiscard]] static Matrix spd(std::size_t n, common::Rng& rng);

  // Reductions ---------------------------------------------------------------
  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// max |a - b| over all entries (shape must match).
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

/// ||a − b||_F / (||b||_F + tiny): relative error for verification.
[[nodiscard]] double relative_error(const Matrix& a, const Matrix& b);

/// Copy `src` into `dst` (shapes must match).
void copy_into(ConstMatrixView src, MatrixView dst);

/// Fill a view with a constant (used to wipe "lost" blocks).
void fill(MatrixView v, double value);

}  // namespace abftc::abft

#pragma once
/// \file abft_qr.hpp
/// ABFT-protected blocked Householder QR.
///
/// QR's protection is the column-wise mirror of AbftLu's: Householder
/// updates are *left* multiplications, which act column-by-column, so
/// column-group checksums (extra checksum columns, groups of Q block
/// columns) are carried exactly by applying every reflector to the checksum
/// columns as well. When a panel finishes, its columns (R above the
/// diagonal, the Householder vectors V below) freeze and their contribution
/// migrates from the active to the frozen accumulator. The tau coefficients
/// are metadata replicated on the reliable rank.

#include <memory>
#include <vector>

#include "abft/checksum.hpp"

namespace abftc::abft {

class CompactWy;

class AbftQr {
 public:
  struct Fault {
    std::size_t at_step = 0;
    std::size_t dead_rank = 0;
  };

  /// A must be square (m = n kept for grid symmetry), dimension a multiple
  /// of nb, block count a multiple of the grid columns.
  AbftQr(Matrix a, std::size_t nb, ProcessGrid grid);
  ~AbftQr();  // out-of-line: wy_ holds the forward-declared CompactWy

  void factor(const std::vector<Fault>& faults = {});

  /// Compact factor: R in the upper triangle, Householder vectors below.
  [[nodiscard]] const Matrix& qr() const noexcept { return a_; }

  /// Apply Qᵀ (from the stored reflectors) to a matrix: returns QᵀX.
  /// With X = the original A this reproduces R (verification).
  [[nodiscard]] Matrix apply_q_transpose(const Matrix& x) const;

  /// Apply Q to a matrix (inverse transform of apply_q_transpose).
  [[nodiscard]] Matrix apply_q(const Matrix& x) const;

  [[nodiscard]] double checksum_residual() const;
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }
  [[nodiscard]] std::size_t block_steps() const noexcept { return nbk_; }

  /// Release the cached compact-WY operators; subsequent Q applications
  /// rebuild V/T from the stored factors per panel (the pre-cache code
  /// path). For memory pressure and for the bitwise cache-vs-rebuild
  /// agreement tests. Results are unaffected.
  void drop_wy_cache() noexcept;

 private:
  void step(std::size_t k);
  void recover_rank(std::size_t k, std::size_t dead_rank);

  Matrix a_;
  Matrix active_cs_, frozen_cs_;  // n × (groups·nb)
  std::vector<std::vector<double>> taus_;  // one vector per block step
  /// Per-panel compact-WY operators cached at factor time (built once for
  /// the trailing update, reused by apply_q / apply_q_transpose instead of
  /// re-running form_t per application). Entry k is null when panel k never
  /// took the blocked path, and is invalidated when a recovery rewrites
  /// that frozen block column (the recovered V is checksum-reconstructed,
  /// not bitwise the original, so the cache must be rebuilt to stay
  /// agreement-exact with the uncached dispatch).
  std::vector<std::unique_ptr<CompactWy>> wy_;
  std::size_t nb_, nbk_;
  std::size_t frozen_steps_ = 0;  ///< block columns 0..frozen_steps_-1 frozen
  ProcessGrid grid_;
  RecoveryStats recovery_;
};

/// Baseline: plain blocked Householder QR without checksums (for overhead
/// benches, the QR analog of plain_blocked_lu). On return `a` holds R in the
/// upper triangle and the Householder vectors below; the tau coefficients
/// are discarded. The trailing updates dispatch on the active KernelPolicy.
void plain_blocked_qr(Matrix& a, std::size_t nb);

}  // namespace abftc::abft

#pragma once
/// \file abft_gemm.hpp
/// Checksum-protected matrix multiplication (the original Huang–Abraham
/// construction [7], block-cyclic flavor). C = A·B is computed as a sequence
/// of rank-nb block outer products; A carries row-group checksums, B carries
/// column-group checksums, and the running C checksums are maintained by the
/// same outer products — so the invariant holds at every step boundary and a
/// rank can be lost and rebuilt mid-multiplication.

#include <optional>

#include "abft/checksum.hpp"

namespace abftc::abft {

/// Kill `dead_rank` right before accumulation step `at_step`
/// (0 <= at_step <= inner block count).
struct InjectedFault {
  std::size_t at_step = 0;
  std::size_t dead_rank = 0;
};

class AbftGemm {
 public:
  /// A: m×k, B: k×n; all dimensions multiples of nb; the block counts of A's
  /// rows and B's columns must be multiples of the grid dimensions.
  AbftGemm(Matrix a, Matrix b, std::size_t nb, ProcessGrid grid);

  /// Run the protected multiplication; optionally inject one fault.
  /// Returns C (payload only, m×n).
  [[nodiscard]] Matrix multiply(std::optional<InjectedFault> fault = {});

  /// Cumulative reconstruction statistics of the last multiply().
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }

  /// Residual of the C checksum invariant after the last multiply()
  /// (tests: ~machine epsilon scaled).
  [[nodiscard]] double result_checksum_residual() const;

 private:
  void inject_and_recover(std::size_t dead_rank);

  Matrix a_, b_;
  Matrix a_cs_;  // row-group checksums of A (static through the multiply)
  Matrix b_cs_;  // col-group checksums of B (static)
  Matrix c_;     // running result
  Matrix c_row_cs_;  // running row-group checksums of C
  Matrix c_col_cs_;  // running col-group checksums of C
  std::size_t nb_;
  ProcessGrid grid_;
  RecoveryStats recovery_;
};

}  // namespace abftc::abft

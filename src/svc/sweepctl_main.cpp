/// \file sweepctl_main.cpp
/// Client for the sweep service. Sends one spec line (the positional
/// arguments joined with spaces, e.g. `sweepctl --socket=/run/sweepd.sock
/// sweep proto=abft axis=alpha:0.1-1.0:10`), reassembles the streamed
/// `data` frames into the payload, and reports the trailer metrics.
///
/// Flags:
///   --socket=PATH       connect to a Unix-domain sweepd listener
///   --tcp=PORT          connect to 127.0.0.1:PORT (or --host=H)
///   --local             do not connect: run the spec in-process through
///                       the batch engine (the byte-identity reference —
///                       service output must equal --local output)
///   --out=PATH          payload destination               [stdout]
///   --trailer=PATH      trailer JSON destination          [stderr]
///   --ping / --stats    service liveness / totals probes
///
/// Exit status: 0 on `end`, 1 on `err ...` or connection failure, 2 on
/// usage errors.

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "svc/net.hpp"
#include "svc/protocol.hpp"

using namespace abftc;

namespace {

std::string join_spec(const std::vector<std::string>& words) {
  std::string spec;
  for (const std::string& w : words) {
    if (!spec.empty()) spec += ' ';
    spec += w;
  }
  return spec;
}

int run_local(const std::string& spec_line, std::ostream& payload,
              std::ostream& trailer) {
  svc::RequestSpec req;
  try {
    req = svc::parse_request_line(spec_line);
  } catch (const svc::svc_error& e) {
    std::cerr << "sweepctl: err code=" << e.code() << " msg=" << e.what()
              << '\n';
    return 1;
  }
  const core::ExperimentSpec spec = svc::to_experiment_spec(req);
  const auto sink = svc::make_sink(req.sink, payload, /*row_flush=*/false);
  core::Experiment exp(spec);
  exp.add_sink(*sink);
  (void)exp.run();
  trailer << "{\"id\":0,\"name\":\"" << spec.name
          << "\",\"cells\":" << spec.sweep.cells() << ",\"local\":true}\n";
  return 0;
}

struct Endpoint {
  std::string socket_path;
  bool has_tcp = false;
  std::string host;
  int tcp_port = 0;
};

svc::Fd connect_endpoint(const Endpoint& ep) {
  if (!ep.socket_path.empty()) return svc::connect_unix(ep.socket_path);
  if (ep.has_tcp) return svc::connect_tcp(ep.host, ep.tcp_port);
  throw svc::svc_error("usage", "need --socket=PATH or --tcp=PORT");
}

/// One-line request/response exchange (ping, stats).
int probe(int fd, const std::string& command) {
  if (!svc::write_line(fd, command)) {
    std::cerr << "sweepctl: write failed\n";
    return 1;
  }
  svc::LineReader reader(fd);
  std::string line;
  if (reader.read_line(line) != svc::LineReader::Status::Ok) {
    std::cerr << "sweepctl: no response\n";
    return 1;
  }
  std::cout << line << '\n';
  return line.rfind("ok", 0) == 0 ? 0 : 1;
}

int run_remote(int fd, const std::string& spec_line, std::ostream& payload,
               std::ostream& trailer) {
  if (!svc::write_line(fd, spec_line)) {
    std::cerr << "sweepctl: write failed\n";
    return 1;
  }
  svc::LineReader reader(fd);
  std::string line;
  while (true) {
    const svc::LineReader::Status status = reader.read_line(line);
    if (status != svc::LineReader::Status::Ok) {
      std::cerr << "sweepctl: connection lost before `end`\n";
      return 1;
    }
    if (line.rfind("data ", 0) == 0) {
      std::size_t len = 0;
      try {
        len = std::stoull(line.substr(5));
      } catch (const std::exception&) {
        std::cerr << "sweepctl: malformed frame header: " << line << '\n';
        return 1;
      }
      std::string chunk;
      if (reader.read_exact(len, chunk) != svc::LineReader::Status::Ok) {
        std::cerr << "sweepctl: truncated data frame\n";
        return 1;
      }
      payload << chunk;
    } else if (line.rfind("trailer ", 0) == 0) {
      trailer << line.substr(8) << '\n';
    } else if (line.rfind("end", 0) == 0) {
      payload.flush();
      return 0;
    } else if (line.rfind("err", 0) == 0) {
      std::cerr << "sweepctl: " << line << '\n';
      return 1;
    } else if (line.rfind("ok", 0) == 0) {
      // admission ack: ok id=N cells=M
    } else {
      std::cerr << "sweepctl: unexpected response: " << line << '\n';
      return 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const bool local = args.get_bool("local", false);
  const bool ping = args.get_bool("ping", false);
  const bool stats = args.get_bool("stats", false);
  const std::string out_path = args.get_string("out", "");
  const std::string trailer_path = args.get_string("trailer", "");
  Endpoint ep;
  ep.socket_path = args.get_string("socket", "");
  ep.has_tcp = args.has("tcp");
  ep.tcp_port = static_cast<int>(args.get_int("tcp", 0));
  ep.host = args.get_string("host", "127.0.0.1");
  const std::string spec_line = join_spec(args.positional());
  args.warn_unknown(std::cerr);

  std::ofstream out_file, trailer_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      std::cerr << "sweepctl: cannot open " << out_path << '\n';
      return 2;
    }
  }
  if (!trailer_path.empty()) {
    trailer_file.open(trailer_path, std::ios::trunc);
    if (!trailer_file) {
      std::cerr << "sweepctl: cannot open " << trailer_path << '\n';
      return 2;
    }
  }
  std::ostream& payload = out_path.empty() ? std::cout : out_file;
  std::ostream& trailer = trailer_path.empty() ? std::cerr : trailer_file;

  try {
    if (local) {
      if (spec_line.empty()) {
        std::cerr << "sweepctl: --local needs a spec line\n";
        return 2;
      }
      return run_local(spec_line, payload, trailer);
    }
    const svc::Fd fd = connect_endpoint(ep);
    if (ping) return probe(fd.get(), "ping");
    if (stats) return probe(fd.get(), "stats");
    if (spec_line.empty()) {
      std::cerr << "sweepctl: no spec line given\n";
      return 2;
    }
    return run_remote(fd.get(), spec_line, payload, trailer);
  } catch (const svc::svc_error& e) {
    std::cerr << "sweepctl: err code=" << e.code() << " msg=" << e.what()
              << '\n';
    return e.code() == "usage" ? 2 : 1;
  } catch (const std::exception& e) {
    std::cerr << "sweepctl: " << e.what() << '\n';
    return 1;
  }
}

#include "svc/service.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/queue.hpp"

namespace abftc::svc {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

/// One admitted request: the spec resolved to its engine form, the sink,
/// the ordered-emitter state, and completion signalling.
struct RequestHandle::Request {
  core::ExperimentSpec spec;
  std::vector<std::shared_ptr<const core::Evaluator>> evaluators;
  core::SinkHeader header;
  unsigned inner_threads = 1;
  std::unique_ptr<core::ResultSink> sink;
  Clock::time_point enqueued;

  std::atomic<bool> cancel{false};

  // Ordered emitter: cells land out of order (work-stealing), rows leave in
  // grid order. `records`/`done`/`next_flush` are guarded by `mu`; whichever
  // worker completes a cell flushes the ready prefix.
  std::mutex mu;
  std::vector<core::CellRecord> records;
  std::vector<std::uint8_t> done;
  std::size_t next_flush = 0;
  bool begun = false;    ///< sink->begin happened
  bool sealed = false;   ///< no further sink calls (failed/cancelled/ended)

  RequestMetrics metrics;
  std::condition_variable finished_cv;
  bool finished = false;

  void fail(const char* code, const std::string& msg) {
    std::lock_guard lock(mu);
    if (metrics.failed) return;
    metrics.failed = true;
    metrics.error_code = code;
    metrics.error_message = msg;
    sealed = true;
  }
};

std::uint64_t RequestHandle::id() const noexcept {
  return req_ ? req_->metrics.id : 0;
}

void RequestHandle::cancel() noexcept {
  if (req_) req_->cancel.store(true, std::memory_order_relaxed);
}

bool RequestHandle::finished() const noexcept {
  if (!req_) return true;
  std::lock_guard lock(req_->mu);
  return req_->finished;
}

const RequestMetrics& RequestHandle::wait() const {
  std::unique_lock lock(req_->mu);
  req_->finished_cv.wait(lock, [&] { return req_->finished; });
  return req_->metrics;
}

bool RequestHandle::wait_for(double seconds) const {
  if (!req_) return true;
  std::unique_lock lock(req_->mu);
  return req_->finished_cv.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [&] { return req_->finished; });
}

// ---- Service ---------------------------------------------------------------

struct SweepService::Impl {
  ServiceConfig cfg;
  BoundedQueue<std::shared_ptr<RequestHandle::Request>> queue;
  std::thread coordinator;
  std::atomic<std::uint64_t> next_id{1};

  mutable std::mutex totals_mu;
  ServiceTotals totals;

  std::mutex stop_mu;
  bool stopped = false;

  explicit Impl(ServiceConfig c) : cfg(c), queue(c.queue_cap) {
    if (cfg.batch_max == 0) cfg.batch_max = 1;
  }

  void coordinate();
  void run_batch(std::vector<std::shared_ptr<RequestHandle::Request>>& batch);
  static void finish(RequestHandle::Request& req, double wall_s,
                     std::size_t batch_requests,
                     const common::ExecutorCounters& exec);
};

SweepService::SweepService(ServiceConfig cfg)
    : impl_(std::make_unique<Impl>(cfg)) {
  impl_->coordinator = std::thread([impl = impl_.get()] {
    impl->coordinate();
  });
}

SweepService::~SweepService() { drain_and_stop(); }

const ServiceConfig& SweepService::config() const noexcept {
  return impl_->cfg;
}

ServiceTotals SweepService::totals() const {
  std::lock_guard lock(impl_->totals_mu);
  return impl_->totals;
}

RequestHandle SweepService::submit(const RequestSpec& spec,
                                   std::unique_ptr<core::ResultSink> sink) {
  auto req = std::make_shared<RequestHandle::Request>();
  req->spec = to_experiment_spec(spec);
  req->spec.validate();
  // Resolve evaluators at admission, so a request always runs on the
  // evaluators that were registered when it was accepted.
  req->evaluators = core::resolve_evaluators(req->spec);
  req->header = core::Experiment::header_for(req->spec);
  const std::size_t n_cells = req->spec.sweep.cells();
  // The same inner evaluator budget Experiment::run would grant this spec
  // on its own — an upper bound the executor's nesting arbitration enforces
  // dynamically; it never changes results.
  req->inner_threads = core::inner_thread_budget(
      n_cells, common::effective_threads(req->spec.threads));
  req->sink = std::move(sink);
  req->records.resize(n_cells);
  req->done.assign(n_cells, 0);
  req->metrics.id = impl_->next_id.fetch_add(1, std::memory_order_relaxed);
  req->metrics.name = req->spec.name;
  req->metrics.cells = n_cells;
  req->enqueued = Clock::now();

  switch (impl_->queue.try_push(req)) {
    case BoundedQueue<std::shared_ptr<RequestHandle::Request>>::Push::Ok:
      break;
    case BoundedQueue<std::shared_ptr<RequestHandle::Request>>::Push::Full: {
      std::lock_guard lock(impl_->totals_mu);
      ++impl_->totals.rejected_full;
      throw svc_error("queue-full",
                      "admission queue is full (" +
                          std::to_string(impl_->cfg.queue_cap) +
                          " requests); retry later");
    }
    case BoundedQueue<std::shared_ptr<RequestHandle::Request>>::Push::Closed:
      throw svc_error("shutting-down", "service is draining");
  }
  {
    std::lock_guard lock(impl_->totals_mu);
    ++impl_->totals.admitted;
  }
  RequestHandle handle;
  handle.req_ = std::move(req);
  return handle;
}

void SweepService::drain_and_stop() {
  {
    std::lock_guard lock(impl_->stop_mu);
    if (impl_->stopped) return;
    impl_->stopped = true;
  }
  impl_->queue.close();
  if (impl_->coordinator.joinable()) impl_->coordinator.join();
}

void SweepService::Impl::coordinate() {
  std::shared_ptr<RequestHandle::Request> first;
  while (queue.pop(first)) {
    std::vector<std::shared_ptr<RequestHandle::Request>> batch;
    batch.push_back(std::move(first));
    for (auto& extra : queue.drain_ready(cfg.batch_max - 1))
      batch.push_back(std::move(extra));
    run_batch(batch);
  }
}

void SweepService::Impl::finish(RequestHandle::Request& req, double wall_s,
                                std::size_t batch_requests,
                                const common::ExecutorCounters& exec) {
  std::lock_guard lock(req.mu);
  req.metrics.wall_s = wall_s;
  req.metrics.batch_requests = batch_requests;
  req.metrics.exec = exec;
  req.metrics.cancelled = req.cancel.load(std::memory_order_relaxed);
  req.finished = true;
  req.finished_cv.notify_all();
}

void SweepService::Impl::run_batch(
    std::vector<std::shared_ptr<RequestHandle::Request>>& batch) {
  const Clock::time_point start = Clock::now();

  // Open every tenant's stream (header row) before any cell runs.
  for (auto& req : batch) {
    req->metrics.queue_wait_s = seconds_between(req->enqueued, start);
    if (req->cancel.load(std::memory_order_relaxed)) continue;
    try {
      std::lock_guard lock(req->mu);
      req->sink->begin(req->header);
      req->begun = true;
    } catch (const std::exception& e) {
      req->fail("sink-error", e.what());
    }
  }

  // The coalesced grid: every tenant's cells in one flat irregular loop.
  struct FlatCell {
    RequestHandle::Request* req;
    std::size_t cell;
  };
  std::vector<FlatCell> flat;
  for (auto& req : batch) {
    std::lock_guard lock(req->mu);
    if (req->sealed) continue;
    for (std::size_t c = 0; c < req->records.size(); ++c)
      flat.push_back({req.get(), c});
  }

  const common::ExecutorStats stats_before =
      common::Executor::global().stats();

  common::Executor::global().parallel_for_dynamic(
      flat.size(),
      [&](std::size_t i) {
        RequestHandle::Request& req = *flat[i].req;
        const std::size_t cell = flat[i].cell;
        if (req.cancel.load(std::memory_order_relaxed)) return;
        {
          std::lock_guard lock(req.mu);
          if (req.sealed) return;
        }
        core::CellRecord rec;
        try {
          rec = core::evaluate_cell(req.spec, req.evaluators, cell,
                                    req.inner_threads);
        } catch (const std::exception& e) {
          // A cell-level failure (e.g. an axis value producing an invalid
          // scenario) fails this tenant only; the batch keeps running.
          req.fail("evaluate-error", e.what());
          return;
        }
        std::lock_guard lock(req.mu);
        req.metrics.cells_run++;
        req.records[cell] = std::move(rec);
        req.done[cell] = 1;
        // Ordered emitter: stream the completed prefix, in grid order.
        while (!req.sealed && req.next_flush < req.done.size() &&
               req.done[req.next_flush]) {
          if (req.cancel.load(std::memory_order_relaxed)) break;
          try {
            req.sink->row(req.header, core::sink_row_values(
                                          req.spec,
                                          req.records[req.next_flush]));
          } catch (const std::exception& e) {
            req.metrics.failed = true;
            req.metrics.error_code = "sink-error";
            req.metrics.error_message = e.what();
            req.sealed = true;
            break;
          }
          req.metrics.rows_flushed++;
          // Release the record's memory once flushed — a big grid does not
          // hold every row until the end like the batch engine does.
          req.records[req.next_flush] = core::CellRecord{};
          req.next_flush++;
        }
      },
      cfg.threads);

  const common::ExecutorCounters exec =
      (common::Executor::global().stats() - stats_before).total;
  const Clock::time_point end = Clock::now();

  ServiceTotals delta;
  delta.batches = 1;
  for (auto& req : batch) {
    {
      std::lock_guard lock(req->mu);
      if (req->begun && !req->sealed &&
          !req->cancel.load(std::memory_order_relaxed)) {
        try {
          req->sink->end(req->header);
        } catch (const std::exception& e) {
          req->metrics.failed = true;
          req->metrics.error_code = "sink-error";
          req->metrics.error_message = e.what();
        }
        req->sealed = true;
      }
      delta.cells_evaluated += req->metrics.cells_run;
      delta.rows_flushed += req->metrics.rows_flushed;
      if (req->metrics.failed)
        ++delta.failed;
      else if (req->cancel.load(std::memory_order_relaxed))
        ++delta.cancelled;
      else
        ++delta.completed;
    }
  }
  {
    // Totals first, finish() last: a waiter woken by finish() must already
    // see this batch in totals().
    std::lock_guard lock(totals_mu);
    totals.batches += delta.batches;
    totals.cells_evaluated += delta.cells_evaluated;
    totals.rows_flushed += delta.rows_flushed;
    totals.completed += delta.completed;
    totals.cancelled += delta.cancelled;
    totals.failed += delta.failed;
  }
  for (auto& req : batch)
    finish(*req, seconds_between(start, end), batch.size(), exec);
}

}  // namespace abftc::svc

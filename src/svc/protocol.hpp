#pragma once
/// \file protocol.hpp
/// The sweep-service request grammar and its translation onto the
/// experiment engine.
///
/// One request is one newline-delimited spec line, reusing the
/// common::parse_key_values grammar with ' ' as the pair separator and '='
/// as the key/value separator:
///
///   sweep proto=abft axis=alpha:0.1-1.0:10 evaluator=sim threads=0 sink=json
///   sweep name=fig7ish proto=pure,bi,abft evaluator=model,sim reps=60
///         axis=alpha:0.0-1.0:11 axis=mtbf:3600-14400:10 seed=7
///
/// Keys (all optional unless noted):
///   name=ID           artifact name ([A-Za-z0-9_-], default "sweep")
///   proto=LIST        pure|bi|abft (comma list) or all     [default all]
///   evaluator=LIST    registry names, e.g. model,sim       [default model]
///   axis=SPEC         repeatable, grid axes in order; SPEC is
///                       FIELD:LO-HI:COUNT        linspace
///                       FIELD:LO-HI:COUNT:log    logspace
///                       FIELD:V1,V2,...          explicit values
///                     FIELD: mtbf, downtime, nodes, ckpt, full-cost,
///                       full-recovery, rho, phi, recons, alpha, duration,
///                       epochs (times in seconds)
///   mtbf= downtime= nodes= ckpt= rho= phi= recons= alpha= t0= epochs=
///                     base-scenario overrides (defaults: the Figure 7
///                     scenario at MTBF = 120 min, alpha = 0.5)
///   reps=N            sim replicates                       [default 200]
///   seed=N            Monte-Carlo root seed
///   threads=N         grid parallelism for batch runs (the service's own
///                     worker budget governs served requests)
///   quantiles=0/1 bins=N   opt-in tail metrics (EvalResult quantiles)
///   sink=json|csv     payload format                       [default json]
///
/// Errors are structured: svc_error carries a stable kebab-case code
/// (bad-verb, unknown-key, bad-axis, unknown-evaluator, too-many-cells,
/// queue-full, ...) that the wire protocol reports as `err code=... msg=...`
/// and tests match on.

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/experiment.hpp"

namespace abftc::svc {

/// A service failure with a stable machine-readable code.
class svc_error : public std::runtime_error {
 public:
  svc_error(std::string code, const std::string& msg)
      : std::runtime_error(msg), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Ceiling on cells() of one admitted request — a structural backstop so a
/// typo'd axis cannot wedge the service behind a billion-cell grid.
inline constexpr std::size_t kMaxCellsPerRequest = 200'000;

/// Payload format of a request's result stream.
enum class SinkKind { Json, Csv };

/// A parsed, validated request: everything needed to build the
/// ExperimentSpec that the batch CLI and the service evaluate identically.
struct RequestSpec {
  std::string name = "sweep";
  std::vector<core::Protocol> protocols;  ///< non-empty after parsing
  std::vector<std::string> evaluators;    ///< non-empty after parsing
  core::ScenarioSweep sweep;              ///< base + axes (cartesian)
  std::size_t reps = 200;
  std::uint64_t seed = 0xABF7C0DEULL;
  unsigned threads = 0;
  bool emit_quantiles = false;
  std::size_t quantile_hist_bins = 8;
  SinkKind sink = SinkKind::Json;

  [[nodiscard]] std::size_t cells() const { return sweep.cells(); }
};

/// Parse + validate one spec line (the part after framing; must start with
/// the verb `sweep`). Throws svc_error with a stable code on any problem;
/// never partially succeeds. Evaluator names are checked against the live
/// EvaluatorRegistry, so the error a client sees names the evaluators the
/// server actually has.
[[nodiscard]] RequestSpec parse_request_line(std::string_view line);

/// The exact ExperimentSpec for a request — shared by the service executor
/// and `sweepctl --local`, which is what makes served rows bitwise-equal to
/// batch rows for the same spec line.
[[nodiscard]] core::ExperimentSpec to_experiment_spec(const RequestSpec& req);

/// Sink for a request's payload on `os`. `row_flush` turns on the sinks'
/// row-level flush mode (live streaming); the bytes are identical either
/// way.
[[nodiscard]] std::unique_ptr<core::ResultSink> make_sink(SinkKind kind,
                                                          std::ostream& os,
                                                          bool row_flush);

/// Render `msg` safe for a single-line `err code=... msg=...` response:
/// newlines and control bytes become spaces.
[[nodiscard]] std::string one_line(std::string_view msg);

}  // namespace abftc::svc

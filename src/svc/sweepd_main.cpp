/// \file sweepd_main.cpp
/// The sweep service daemon: binds the configured front-ends (Unix-domain
/// socket, loopback TCP, drop directory), serves until SIGTERM/SIGINT, then
/// drains gracefully — every admitted request finishes and streams its
/// trailer before the process exits.
///
/// Flags:
///   --socket=PATH       Unix-domain listener (default: none)
///   --tcp=PORT          loopback TCP listener; 0 = ephemeral, the bound
///                       port is printed as `listening tcp=<port>`
///   --queue-dir=DIR     drop-directory file queue (NAME.req -> NAME.out)
///   --queue-cap=N       admission queue bound (backpressure)   [16]
///   --batch-max=N       max requests coalesced per batch       [4]
///   --threads=N         batch worker budget; 0 = hardware      [0]
///   --metrics=PATH      write the service-totals JSON there on shutdown

#include <csignal>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "svc/server.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  svc::ServerConfig cfg;
  cfg.unix_path = args.get_string("socket", "");
  cfg.tcp_port = args.has("tcp")
                     ? static_cast<int>(args.get_int("tcp", 0))
                     : -1;
  cfg.queue_dir = args.get_string("queue-dir", "");
  cfg.service.queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 16));
  cfg.service.batch_max =
      static_cast<std::size_t>(args.get_int("batch-max", 4));
  cfg.service.threads = static_cast<unsigned>(args.get_int("threads", 0));
  const std::string metrics_path = args.get_string("metrics", "");
  args.warn_unknown(std::cerr);

  if (cfg.unix_path.empty() && cfg.tcp_port < 0 && cfg.queue_dir.empty()) {
    std::cerr << "sweepd: nothing to serve; give --socket=PATH, --tcp=PORT "
                 "and/or --queue-dir=DIR\n";
    return 2;
  }

  // Block the shutdown signals in every thread (the server's threads
  // inherit the mask), then collect them synchronously below.
  sigset_t shutdown_set;
  sigemptyset(&shutdown_set);
  sigaddset(&shutdown_set, SIGTERM);
  sigaddset(&shutdown_set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &shutdown_set, nullptr);

  svc::SweepServer server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "sweepd: " << e.what() << '\n';
    return 1;
  }
  if (!cfg.unix_path.empty())
    std::cout << "listening unix=" << cfg.unix_path << '\n';
  if (cfg.tcp_port >= 0)
    std::cout << "listening tcp=" << server.tcp_port() << '\n';
  if (!cfg.queue_dir.empty())
    std::cout << "listening queue-dir=" << cfg.queue_dir << '\n';
  std::cout.flush();

  int sig = 0;
  sigwait(&shutdown_set, &sig);
  std::cerr << "sweepd: signal " << sig << ", draining\n";
  server.stop();

  const std::string totals = server.totals_json();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    out << totals << '\n';
  }
  std::cerr << "sweepd: drained " << totals << '\n';
  return 0;
}

#include "svc/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "svc/protocol.hpp"

namespace abftc::svc {

namespace {

[[noreturn]] void throw_errno(const char* code, const std::string& what) {
  throw svc_error(code, what + ": " + std::strerror(errno));
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.release();
  }
  return *this;
}

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw svc_error("listen-failed", "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("listen-failed", "socket(AF_UNIX)");
  ::unlink(path.c_str());  // replace a stale socket from a dead server
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("listen-failed", "bind(" + path + ")");
  if (::listen(fd.get(), 64) != 0) throw_errno("listen-failed", "listen");
  return fd;
}

Fd listen_tcp(int port, int& bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("listen-failed", "socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("listen-failed", "bind(127.0.0.1:" + std::to_string(port) +
                                     ")");
  if (::listen(fd.get(), 64) != 0) throw_errno("listen-failed", "listen");
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0)
    throw_errno("listen-failed", "getsockname");
  bound_port = ntohs(got.sin_port);
  return fd;
}

Fd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw svc_error("connect-failed", "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("connect-failed", "socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw_errno("connect-failed", "connect(" + path + ")");
  return fd;
}

Fd connect_tcp(const std::string& host, int port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("connect-failed", "socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw svc_error("connect-failed", "bad IPv4 address: " + host);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw_errno("connect-failed",
                "connect(" + host + ":" + std::to_string(port) + ")");
  return fd;
}

Fd accept_with_timeout(int listen_fd, int timeout_ms,
                       const std::atomic<bool>* stop) {
  pollfd p{listen_fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (stop && stop->load(std::memory_order_relaxed)) return Fd();
  if (rc <= 0 || !(p.revents & POLLIN)) return Fd();
  return Fd(::accept(listen_fd, nullptr, nullptr));
}

bool write_all(int fd, const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL keeps a torn peer from raising SIGPIPE even before the
    // server's process-wide ignore is installed (sweepctl, tests).
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0 && (errno == ENOTSOCK || errno == EOPNOTSUPP))
      w = ::write(fd, p, n);  // plain pipe/file fd (tests)
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_line(int fd, const std::string& line) noexcept {
  std::string out = line;
  out.push_back('\n');
  return write_all(fd, out.data(), out.size());
}

bool peer_closed(int fd) noexcept {
  pollfd p{fd, POLLRDHUP, 0};
  if (::poll(&p, 1, 0) < 0) return false;
  return (p.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0;
}

LineReader::Status LineReader::fill(const std::atomic<bool>* stop) {
  while (true) {
    if (stop && stop->load(std::memory_order_relaxed)) return Status::Stopped;
    pollfd p{fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Error;
    }
    if (rc == 0) continue;  // timeout: re-check the stop flag
    char chunk[4096];
    const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Error;
    }
    if (r == 0) {
      eof_ = true;
      return Status::Eof;
    }
    buf_.append(chunk, static_cast<std::size_t>(r));
    return Status::Ok;
  }
}

LineReader::Status LineReader::read_line(std::string& out,
                                         const std::atomic<bool>* stop) {
  bool overlong = false;
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      if (overlong || nl > max_line_) {
        buf_.erase(0, nl + 1);
        return Status::TooLong;
      }
      out.assign(buf_, 0, nl);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      buf_.erase(0, nl + 1);
      return Status::Ok;
    }
    if (buf_.size() > max_line_) {
      // Drop what we have and keep consuming until the newline so the
      // connection stays line-synchronized.
      overlong = true;
      buf_.clear();
    }
    if (eof_) return buf_.empty() ? Status::Eof : Status::Error;
    const Status s = fill(stop);
    if (s == Status::Stopped || s == Status::Error) return s;
    // Eof with buffered bytes: loop once more to flush a final unterminated
    // line as an error; Ok: try again.
  }
}

LineReader::Status LineReader::read_exact(std::size_t n, std::string& out,
                                          const std::atomic<bool>* stop) {
  while (buf_.size() < n) {
    if (eof_) return Status::Eof;
    const Status s = fill(stop);
    if (s == Status::Stopped || s == Status::Error) return s;
  }
  out.append(buf_, 0, n);
  buf_.erase(0, n);
  return Status::Ok;
}

}  // namespace abftc::svc

#pragma once
/// \file net.hpp
/// Thin POSIX socket layer shared by the sweep service (server.cpp), the
/// sweepctl client, and the tests: RAII fds, Unix-domain/TCP listeners and
/// connectors, stop-aware buffered line reading with a hard line-length
/// cap, and full-write helpers. No protocol knowledge lives here.

#include <atomic>
#include <cstddef>
#include <string>

namespace abftc::svc {

/// Hard cap on one protocol line (spec lines, command lines). Longer lines
/// are consumed and rejected with a structured error; the connection
/// survives.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on a Unix-domain stream socket at `path`, replacing a
/// stale socket file. Throws svc_error("listen-failed") on failure.
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Bind + listen on 127.0.0.1:`port` (0 = ephemeral); the bound port is
/// written to `bound_port`. Throws svc_error("listen-failed") on failure.
[[nodiscard]] Fd listen_tcp(int port, int& bound_port);

/// Connect to a Unix-domain / TCP listener. Throw svc_error
/// ("connect-failed") on failure.
[[nodiscard]] Fd connect_unix(const std::string& path);
[[nodiscard]] Fd connect_tcp(const std::string& host, int port);

/// Accept with a poll timeout so callers can observe a stop flag between
/// attempts. Returns an invalid Fd on timeout, stop, or a closed listener.
[[nodiscard]] Fd accept_with_timeout(int listen_fd, int timeout_ms,
                                     const std::atomic<bool>* stop = nullptr);

/// Write all of [data, data+n); EINTR-safe, SIGPIPE-free (the server
/// ignores SIGPIPE process-wide; a torn peer surfaces as false). False on
/// any error — the caller treats the connection as gone.
bool write_all(int fd, const void* data, std::size_t n) noexcept;
bool write_line(int fd, const std::string& line) noexcept;  ///< appends '\n'

/// True when the peer has closed or errored the connection (POLLRDHUP /
/// POLLHUP / POLLERR) — used to cancel in-flight requests on client
/// disconnect without consuming pipelined bytes.
[[nodiscard]] bool peer_closed(int fd) noexcept;

/// Buffered newline-delimited reader over a socket/pipe fd.
class LineReader {
 public:
  enum class Status {
    Ok,       ///< one line delivered (without the '\n')
    Eof,      ///< orderly shutdown from the peer
    TooLong,  ///< line exceeded max_line; it was consumed and dropped
    Stopped,  ///< the stop flag was raised while waiting
    Error,    ///< read error; connection unusable
  };

  explicit LineReader(int fd, std::size_t max_line = kMaxLineBytes)
      : fd_(fd), max_line_(max_line) {}

  /// Block (polling every ~100 ms against `stop`) until a full line, EOF,
  /// or an over-long line arrives.
  Status read_line(std::string& out, const std::atomic<bool>* stop = nullptr);

  /// Read exactly n raw bytes (appending to out) — the payload of a
  /// length-prefixed frame. Returns Ok or Eof/Stopped/Error.
  Status read_exact(std::size_t n, std::string& out,
                    const std::atomic<bool>* stop = nullptr);

 private:
  Status fill(const std::atomic<bool>* stop);
  int fd_;
  std::size_t max_line_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace abftc::svc

#pragma once
/// \file queue.hpp
/// The service's bounded admission queue: producers (connection threads,
/// the drop-directory scanner, in-process submitters) push admitted
/// requests, the coordinator pops them. The bound is the backpressure
/// mechanism — a full queue rejects immediately (the caller turns that
/// into a structured `queue-full` error) instead of buffering unbounded
/// multi-tenant load. Closing the queue wakes the coordinator, which
/// drains whatever was already admitted (graceful shutdown never drops an
/// accepted request).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace abftc::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {}

  /// Admit `item` unless the queue is full or closed. Never blocks — a
  /// full queue is a reject, not a wait (backpressure contract).
  enum class Push { Ok, Full, Closed };
  Push try_push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return Push::Closed;
      if (items_.size() >= cap_) return Push::Full;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Push::Ok;
  }

  /// Block until an item is available or the queue is closed *and* empty
  /// (drain semantics). Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking: up to `max` additional items, for batch coalescing.
  std::vector<T> drain_ready(std::size_t max) {
    std::vector<T> out;
    std::lock_guard lock(mu_);
    while (out.size() < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// Stop admitting; wake poppers. Already-queued items stay poppable.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace abftc::svc

#pragma once
/// \file service.hpp
/// The multi-tenant sweep service core: a bounded admission queue feeding a
/// coordinator thread that coalesces the cells of every queued request into
/// one batch and runs them as a single work-stealing loop
/// (Executor::global().parallel_for_dynamic) — the irregular, systematically
/// enumerable cell mix is exactly the shape the stealing deques exist for,
/// and one loop for N tenants means the box is saturated without
/// oversubscription (the PR 3/6 nesting arbitration bounds each cell's
/// inner evaluator parallelism).
///
/// Determinism: every cell is evaluated by core::evaluate_cell and every
/// row assembled by core::sink_row_values — the exact code path of
/// Experiment::run — and rows are flushed to each request's sink in grid
/// order (an ordered emitter releases the completed prefix as cells land).
/// A served request's sink bytes are therefore bitwise-identical to a batch
/// CLI run of the same spec, no matter what else shared its batch.
///
/// Backpressure: a full admission queue rejects immediately with
/// svc_error("queue-full"). Cancellation: RequestHandle::cancel (wired to
/// client disconnect by the server) stops that request's remaining cells
/// and row emission; the other tenants of the batch are unaffected.
/// Shutdown: drain_and_stop finishes every admitted request, never drops
/// one.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/executor.hpp"
#include "core/experiment.hpp"
#include "svc/protocol.hpp"

namespace abftc::svc {

struct ServiceConfig {
  /// Admitted-but-not-started requests the queue holds before rejecting
  /// (backpressure bound).
  std::size_t queue_cap = 16;
  /// Requests coalesced into one execution batch (>= 1).
  std::size_t batch_max = 4;
  /// Worker budget of the batch cell loop; 0 = hardware concurrency.
  unsigned threads = 0;
};

/// Per-request accounting, reported in the wire trailer record.
struct RequestMetrics {
  std::uint64_t id = 0;
  std::string name;
  std::size_t cells = 0;          ///< grid cells of the request
  std::size_t cells_run = 0;      ///< cells actually evaluated (< on cancel)
  std::size_t rows_flushed = 0;   ///< rows streamed to the sink
  std::size_t batch_requests = 0; ///< tenants sharing the execution batch
  double queue_wait_s = 0.0;      ///< admission -> batch start
  double wall_s = 0.0;            ///< batch start -> request finished
  bool cancelled = false;
  bool failed = false;
  std::string error_code;     ///< set when failed
  std::string error_message;  ///< set when failed
  /// Executor::stats() delta over the batch this request ran in (the
  /// scheduler's chunks/steals/parks are a shared-loop property, so the
  /// delta is batch-wide, not per-tenant).
  common::ExecutorCounters exec;
};

/// Running totals across the service lifetime.
struct ServiceTotals {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;  ///< backpressure rejections
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t cells_evaluated = 0;
  std::uint64_t rows_flushed = 0;
};

/// Handle on one admitted request.
class RequestHandle {
 public:
  RequestHandle() = default;

  [[nodiscard]] std::uint64_t id() const noexcept;
  /// Ask the service to stop evaluating/streaming this request. Safe from
  /// any thread, idempotent; already-flushed rows are not recalled.
  void cancel() noexcept;
  [[nodiscard]] bool finished() const noexcept;
  /// Block until the request finished; returns its metrics.
  const RequestMetrics& wait() const;
  /// Bounded wait; true when finished.
  bool wait_for(double seconds) const;

 private:
  friend class SweepService;
  struct Request;
  std::shared_ptr<Request> req_;
};

class SweepService {
 public:
  explicit SweepService(ServiceConfig cfg = {});
  ~SweepService();  ///< drain_and_stop()
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Admit a request: its cells will be batched with other tenants' and its
  /// rows streamed to `sink` (owned; begin/row/end called in grid order).
  /// Throws svc_error("queue-full") when backpressured,
  /// svc_error("shutting-down") after drain_and_stop began.
  RequestHandle submit(const RequestSpec& spec,
                       std::unique_ptr<core::ResultSink> sink);

  /// Stop admitting, finish every already-admitted request, join the
  /// coordinator. Idempotent.
  void drain_and_stop();

  [[nodiscard]] ServiceTotals totals() const;
  [[nodiscard]] const ServiceConfig& config() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace abftc::svc

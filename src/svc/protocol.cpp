#include "svc/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "svc/net.hpp"
#include "common/time_units.hpp"
#include "core/params.hpp"
#include "core/sweep.hpp"

namespace abftc::svc {

namespace {

[[noreturn]] void fail(const char* code, const std::string& msg) {
  throw svc_error(code, msg);
}

double parse_number(std::string_view text, const char* what) {
  if (text.empty()) fail("bad-number", std::string(what) + ": empty value");
  const std::string s(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size())
    fail("bad-number",
         std::string(what) + ": cannot parse '" + s + "' as a number");
  return v;
}

std::size_t parse_count(std::string_view text, const char* what) {
  const double v = parse_number(text, what);
  if (v < 1.0 || v != static_cast<double>(static_cast<std::size_t>(v)))
    fail("bad-number", std::string(what) + ": '" + std::string(text) +
                           "' is not a positive integer");
  return static_cast<std::size_t>(v);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

core::Protocol parse_protocol(std::string_view key) {
  if (key == "pure") return core::Protocol::PurePeriodicCkpt;
  if (key == "bi") return core::Protocol::BiPeriodicCkpt;
  if (key == "abft") return core::Protocol::AbftPeriodicCkpt;
  fail("unknown-protocol", "unknown protocol '" + std::string(key) +
                               "' (known: pure, bi, abft, all)");
}

core::AxisField parse_axis_field(std::string_view name) {
  if (name == "mtbf") return core::AxisField::Mtbf;
  if (name == "downtime") return core::AxisField::Downtime;
  if (name == "nodes") return core::AxisField::Nodes;
  if (name == "ckpt") return core::AxisField::CkptCost;
  if (name == "full-cost") return core::AxisField::FullCost;
  if (name == "full-recovery") return core::AxisField::FullRecovery;
  if (name == "rho") return core::AxisField::Rho;
  if (name == "phi") return core::AxisField::Phi;
  if (name == "recons") return core::AxisField::Recons;
  if (name == "alpha") return core::AxisField::Alpha;
  if (name == "duration") return core::AxisField::EpochDuration;
  if (name == "epochs") return core::AxisField::Epochs;
  fail("bad-axis", "unknown axis field '" + std::string(name) +
                       "' (known: mtbf, downtime, nodes, ckpt, full-cost, "
                       "full-recovery, rho, phi, recons, alpha, duration, "
                       "epochs)");
}

/// Split "LO-HI" on the range dash: the first '-' that follows a digit or
/// '.' (so exponents like 1e-3 survive; leading signs are not part of this
/// grammar — every swept quantity is non-negative).
bool split_range(std::string_view text, std::string_view& lo,
                 std::string_view& hi) {
  for (std::size_t i = 1; i < text.size(); ++i) {
    if (text[i] != '-') continue;
    const char prev = text[i - 1];
    if (prev == 'e' || prev == 'E') continue;
    lo = text.substr(0, i);
    hi = text.substr(i + 1);
    return true;
  }
  return false;
}

/// axis=FIELD:LO-HI:COUNT[:log] | axis=FIELD:V1,V2,...
core::Axis parse_axis(std::string_view spec) {
  const auto parts = split(spec, ':');
  if (parts.size() < 2 || parts[0].empty())
    fail("bad-axis", "axis spec '" + std::string(spec) +
                         "' is not FIELD:LO-HI:COUNT[:log] or "
                         "FIELD:V1,V2,...");
  const std::string name(parts[0]);
  const core::AxisField field = parse_axis_field(parts[0]);

  if (parts.size() == 2 && parts[1].find(',') != std::string_view::npos) {
    std::vector<double> values;
    for (const auto item : split(parts[1], ','))
      values.push_back(parse_number(item, "axis value"));
    return core::Axis::values(name, field, std::move(values));
  }

  std::string_view lo_text, hi_text;
  if (parts.size() > 4 || !split_range(parts[1], lo_text, hi_text))
    fail("bad-axis", "axis spec '" + std::string(spec) +
                         "' is not FIELD:LO-HI:COUNT[:log] or "
                         "FIELD:V1,V2,...");
  if (parts.size() == 2) {
    // FIELD:V alone — a single-value axis (pin a parameter).
    return core::Axis::values(name, field,
                              {parse_number(parts[1], "axis value")});
  }
  const double lo = parse_number(lo_text, "axis lower bound");
  const double hi = parse_number(hi_text, "axis upper bound");
  const std::size_t count = parse_count(parts[2], "axis count");
  bool log = false;
  if (parts.size() == 4) {
    if (parts[3] == "log")
      log = true;
    else
      fail("bad-axis", "axis spec '" + std::string(spec) +
                           "': trailing '" + std::string(parts[3]) +
                           "' (only 'log' is understood)");
  }
  try {
    return log ? core::Axis::logspace(name, field, lo, hi, count)
               : core::Axis::linspace(name, field, lo, hi, count);
  } catch (const common::precondition_error& e) {
    fail("bad-axis", e.what());
  }
}

}  // namespace

std::string one_line(std::string_view msg) {
  std::string out(msg);
  for (char& c : out)
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
  return out;
}

RequestSpec parse_request_line(std::string_view line) {
  if (line.size() > kMaxLineBytes)
    fail("line-too-long", "spec line exceeds " +
                              std::to_string(kMaxLineBytes) + " bytes");

  // Collapse whitespace runs so the parse_key_values ' '-separated grammar
  // never sees an empty item.
  std::string text;
  text.reserve(line.size());
  for (const char c : line) {
    const char mapped = (c == '\t' || c == '\r') ? ' ' : c;
    if (mapped == ' ' && (text.empty() || text.back() == ' ')) continue;
    text.push_back(mapped);
  }
  while (!text.empty() && text.back() == ' ') text.pop_back();
  if (text.empty()) fail("bad-verb", "empty request line");

  const std::size_t verb_end = text.find(' ');
  const std::string verb = text.substr(0, verb_end);
  if (verb != "sweep")
    fail("bad-verb", "unknown verb '" + verb +
                         "' (known: sweep, ping, stats, quit)");

  std::vector<common::KeyValue> items;
  if (verb_end != std::string::npos) {
    try {
      items = common::parse_key_values(
          std::string_view(text).substr(verb_end + 1), ' ', '=');
    } catch (const common::precondition_error& e) {
      fail("bad-spec", e.what());
    }
  }

  RequestSpec req;
  // The base scenario every override and axis starts from: Figure 7 at
  // MTBF = 120 min, alpha = 0.5 — the same default the figure drivers use.
  req.sweep.base = core::figure7_scenario(common::minutes(120.0), 0.5);
  req.sweep.combine = core::Combine::Cartesian;

  std::set<std::string> seen;
  for (const auto& [key, value] : items) {
    if (key != "axis" && !seen.insert(key).second)
      fail("duplicate-key", "key '" + key + "' given more than once");
    if (value.empty() && key != "axis")
      fail("bad-spec", "key '" + key + "' has no value");

    if (key == "name") {
      const bool ok =
          !value.empty() &&
          std::all_of(value.begin(), value.end(), [](unsigned char c) {
            return std::isalnum(c) || c == '_' || c == '-';
          });
      if (!ok)
        fail("bad-name",
             "name '" + value + "' is not [A-Za-z0-9_-]+");
      req.name = value;
    } else if (key == "proto") {
      if (value == "all") {
        req.protocols = core::all_protocols();
      } else {
        for (const auto item : split(value, ','))
          req.protocols.push_back(parse_protocol(item));
      }
    } else if (key == "evaluator" || key == "eval") {
      for (const auto item : split(value, ','))
        req.evaluators.emplace_back(item);
    } else if (key == "axis") {
      req.sweep.axes.push_back(parse_axis(value));
    } else if (key == "mtbf") {
      req.sweep.base.platform.mtbf = parse_number(value, "mtbf");
    } else if (key == "downtime") {
      req.sweep.base.platform.downtime = parse_number(value, "downtime");
    } else if (key == "nodes") {
      req.sweep.base.platform.nodes = parse_count(value, "nodes");
    } else if (key == "ckpt") {
      const double c = parse_number(value, "ckpt");
      req.sweep.base.ckpt.full_cost = c;
      req.sweep.base.ckpt.full_recovery = c;
    } else if (key == "rho") {
      req.sweep.base.ckpt.rho = parse_number(value, "rho");
    } else if (key == "phi") {
      req.sweep.base.abft.phi = parse_number(value, "phi");
    } else if (key == "recons") {
      req.sweep.base.abft.recons = parse_number(value, "recons");
    } else if (key == "alpha") {
      req.sweep.base.epoch.alpha = parse_number(value, "alpha");
    } else if (key == "t0") {
      req.sweep.base.epoch.duration = parse_number(value, "t0");
    } else if (key == "epochs") {
      req.sweep.base.epochs = parse_count(value, "epochs");
    } else if (key == "reps") {
      req.reps = parse_count(value, "reps");
    } else if (key == "seed") {
      req.seed = static_cast<std::uint64_t>(
          std::strtoull(std::string(value).c_str(), nullptr, 10));
    } else if (key == "threads") {
      const double t = parse_number(value, "threads");
      if (t < 0 || t != static_cast<double>(static_cast<unsigned>(t)))
        fail("bad-number", "threads must be a non-negative integer");
      req.threads = static_cast<unsigned>(t);
    } else if (key == "quantiles") {
      req.emit_quantiles = value != "0" && value != "false";
    } else if (key == "bins") {
      req.quantile_hist_bins = parse_count(value, "bins");
    } else if (key == "sink") {
      if (value == "json")
        req.sink = SinkKind::Json;
      else if (value == "csv")
        req.sink = SinkKind::Csv;
      else
        fail("bad-sink",
             "unknown sink '" + value + "' (known: json, csv)");
    } else {
      fail("unknown-key", "unknown key '" + key + "'");
    }
  }

  if (req.protocols.empty()) req.protocols = core::all_protocols();
  if (req.evaluators.empty()) req.evaluators = {"model"};
  // Duplicate protocols/evaluators would produce colliding series labels
  // (and silently double the work); reject them as spec errors.
  {
    std::set<core::Protocol> protos(req.protocols.begin(),
                                    req.protocols.end());
    if (protos.size() != req.protocols.size())
      fail("duplicate-series", "a protocol is listed more than once");
    std::set<std::string> evals(req.evaluators.begin(), req.evaluators.end());
    if (evals.size() != req.evaluators.size())
      fail("duplicate-series", "an evaluator is listed more than once");
  }
  for (const auto& name : req.evaluators)
    if (!core::EvaluatorRegistry::instance().find(name)) {
      std::string known;
      for (const auto& n : core::EvaluatorRegistry::instance().names())
        known += (known.empty() ? "" : ", ") + n;
      fail("unknown-evaluator", "no evaluator named '" + name +
                                    "' (registered: " + known + ")");
    }

  try {
    req.sweep.validate();
    req.sweep.base.validate();
  } catch (const std::exception& e) {
    fail("bad-scenario", e.what());
  }
  if (req.cells() > kMaxCellsPerRequest)
    fail("too-many-cells",
         "request enumerates " + std::to_string(req.cells()) +
             " cells (cap: " + std::to_string(kMaxCellsPerRequest) + ")");
  try {
    to_experiment_spec(req).validate();
  } catch (const svc_error&) {
    throw;
  } catch (const std::exception& e) {
    fail("bad-spec", e.what());
  }
  return req;
}

core::ExperimentSpec to_experiment_spec(const RequestSpec& req) {
  core::ExperimentSpec spec;
  spec.name = req.name;
  spec.sweep = req.sweep;
  spec.threads = req.threads;
  spec.emit_quantiles = req.emit_quantiles;
  spec.quantile_hist_bins = req.quantile_hist_bins;
  core::MonteCarloOptions mc;
  mc.replicates = req.reps;
  mc.seed = req.seed;
  spec.series = core::cross_series(req.protocols, req.evaluators, {}, mc);
  return spec;
}

std::unique_ptr<core::ResultSink> make_sink(SinkKind kind, std::ostream& os,
                                            bool row_flush) {
  if (kind == SinkKind::Csv) {
    auto sink = std::make_unique<core::CsvSink>(os);
    sink->set_row_flush(row_flush);
    return sink;
  }
  auto sink = std::make_unique<core::JsonSink>(os);
  sink->set_row_flush(row_flush);
  return sink;
}

}  // namespace abftc::svc

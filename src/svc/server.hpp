#pragma once
/// \file server.hpp
/// The sweep service's ingestion front-ends over SweepService:
///
///  * socket listeners (Unix-domain and/or loopback TCP) speaking a
///    newline-delimited command protocol — one thread per connection,
///    requests admitted into the bounded queue, result bytes streamed back
///    as length-prefixed `data` frames while cells complete, a `trailer`
///    metrics record, and `end`;
///  * a drop-directory file queue for offline ingestion: `NAME.req` files
///    containing one spec line become `NAME.out` (payload, streamed with
///    row-level flush) + `NAME.trailer.json`, or `NAME.err` on rejection.
///
/// Wire protocol (client -> server, one command per line):
///   sweep <spec...>   admit a request (protocol.hpp grammar)
///   ping              liveness probe
///   stats             one-line JSON of the service totals
///   quit              close the connection
///
/// Server -> client, per request:
///   ok id=<id> cells=<n>
///   data <len>\n<len raw payload bytes>     (repeated; concatenation of
///                                            all frames = exactly the
///                                            batch-CLI sink bytes)
///   trailer <one-line JSON metrics record>
///   end id=<id>
/// or, at any admission/parse failure:
///   err code=<kebab-code> msg=<text>        (the connection survives)
///
/// Cancellation: a client that disconnects mid-request cancels it (the
/// connection thread polls POLLRDHUP while waiting). Shutdown via stop()
/// is a graceful drain: listeners close, in-flight requests finish, the
/// file scanner reaps its pending outputs, then the service drains.

#include <memory>
#include <string>

#include "svc/service.hpp"

namespace abftc::svc {

struct ServerConfig {
  std::string unix_path;   ///< empty: no Unix-domain listener
  int tcp_port = -1;       ///< -1: no TCP listener; 0: ephemeral loopback
  std::string queue_dir;   ///< empty: no drop-directory scanner
  ServiceConfig service;
  int poll_ms = 200;       ///< drop-directory scan interval
};

class SweepServer {
 public:
  explicit SweepServer(ServerConfig cfg);
  ~SweepServer();  ///< stop()
  SweepServer(const SweepServer&) = delete;
  SweepServer& operator=(const SweepServer&) = delete;

  /// Bind listeners, start the accept/scan threads. Throws svc_error on
  /// bind failure.
  void start();

  /// Graceful drain: stop accepting, finish every in-flight request,
  /// join all threads. Idempotent.
  void stop();

  /// The TCP port actually bound (for tcp_port = 0); -1 when TCP is off.
  [[nodiscard]] int tcp_port() const noexcept;

  [[nodiscard]] ServiceTotals totals() const;
  /// The service totals as a one-line JSON document (the `stats` command
  /// and the sweepd --metrics artifact).
  [[nodiscard]] std::string totals_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-line JSON of a request's trailer metrics record (also reused by the
/// file-queue `.trailer.json` artifact).
[[nodiscard]] std::string trailer_json(const RequestMetrics& m);

}  // namespace abftc::svc

#include "svc/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "svc/net.hpp"

namespace abftc::svc {

namespace fs = std::filesystem;

namespace {

/// streambuf that turns every flush into one length-prefixed `data` frame
/// on the connection fd. Frames are held back until enable() — the `ok`
/// admission line must precede the first frame, and the coordinator may
/// start streaming before the connection thread has written it. A write
/// failure (client gone) marks the stream broken; later writes are
/// swallowed so sink emission never throws into the batch loop, and the
/// connection thread observes broken() to cancel the request.
class FrameBuf final : public std::streambuf {
 public:
  explicit FrameBuf(int fd) : fd_(fd) {}

  [[nodiscard]] bool broken() const noexcept {
    return broken_.load(std::memory_order_relaxed);
  }

  /// Allow frames onto the wire (called once the `ok` line is out) and
  /// release anything buffered before that point.
  void enable() {
    std::lock_guard lock(mu_);
    enabled_ = true;
    emit_locked();
  }

 protected:
  int overflow(int ch) override {
    std::lock_guard lock(mu_);
    if (ch != traits_type::eof()) buf_.push_back(static_cast<char>(ch));
    if (buf_.size() >= kFrameTarget) emit_locked();
    return broken() ? traits_type::eof() : ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::lock_guard lock(mu_);
    buf_.append(s, static_cast<std::size_t>(n));
    if (buf_.size() >= kFrameTarget) emit_locked();
    return n;
  }

  int sync() override {
    std::lock_guard lock(mu_);
    emit_locked();
    return 0;  // a broken peer must not abort the batch loop
  }

 private:
  static constexpr std::size_t kFrameTarget = 56 * 1024;

  void emit_locked() {
    if (!enabled_ || buf_.empty()) return;
    if (!broken()) {
      const std::string header = "data " + std::to_string(buf_.size());
      if (!write_line(fd_, header) ||
          !write_all(fd_, buf_.data(), buf_.size())) {
        broken_.store(true, std::memory_order_relaxed);
      }
    }
    buf_.clear();
  }

  int fd_;
  std::mutex mu_;
  std::string buf_;
  bool enabled_ = false;
  std::atomic<bool> broken_{false};
};

std::string err_line(const std::string& code, const std::string& msg) {
  return "err code=" + code + " msg=" + one_line(msg);
}

void append_counters(std::string& out, const common::ExecutorCounters& c) {
  out += "{\"chunks_claimed\":" + std::to_string(c.chunks_claimed) +
         ",\"tasks_stolen\":" + std::to_string(c.tasks_stolen) +
         ",\"steal_failures\":" + std::to_string(c.steal_failures) +
         ",\"parks\":" + std::to_string(c.parks) +
         ",\"unparks\":" + std::to_string(c.unparks) + "}";
}

}  // namespace

std::string trailer_json(const RequestMetrics& m) {
  std::string out = "{\"id\":" + std::to_string(m.id) + ",\"name\":\"" +
                    m.name + "\",\"cells\":" + std::to_string(m.cells) +
                    ",\"cells_run\":" + std::to_string(m.cells_run) +
                    ",\"rows_flushed\":" + std::to_string(m.rows_flushed) +
                    ",\"batch_requests\":" +
                    std::to_string(m.batch_requests) + ",\"queue_wait_s\":" +
                    common::JsonWriter::number(m.queue_wait_s) +
                    ",\"wall_s\":" + common::JsonWriter::number(m.wall_s) +
                    ",\"cancelled\":" + (m.cancelled ? "true" : "false") +
                    ",\"exec\":";
  append_counters(out, m.exec);
  out += "}";
  return out;
}

// ---- Server ----------------------------------------------------------------

struct SweepServer::Impl {
  ServerConfig cfg;
  std::unique_ptr<SweepService> service;
  Fd unix_listener;
  Fd tcp_listener;
  int bound_tcp_port = -1;
  std::atomic<bool> stop{false};
  std::thread unix_thread, tcp_thread, scan_thread;
  std::mutex conn_mu;
  std::vector<std::thread> connections;
  bool started = false;
  bool stopped = false;

  explicit Impl(ServerConfig c) : cfg(std::move(c)) {}

  void accept_loop(int listen_fd);
  void handle_connection(Fd fd);
  void scan_loop();
  void serve_request(int fd, const std::string& line);
};

SweepServer::SweepServer(ServerConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg))) {}

SweepServer::~SweepServer() { stop(); }

int SweepServer::tcp_port() const noexcept { return impl_->bound_tcp_port; }

ServiceTotals SweepServer::totals() const {
  return impl_->service ? impl_->service->totals() : ServiceTotals{};
}

std::string SweepServer::totals_json() const {
  const ServiceTotals t = totals();
  return "{\"admitted\":" + std::to_string(t.admitted) +
         ",\"rejected_full\":" + std::to_string(t.rejected_full) +
         ",\"completed\":" + std::to_string(t.completed) +
         ",\"cancelled\":" + std::to_string(t.cancelled) +
         ",\"failed\":" + std::to_string(t.failed) +
         ",\"batches\":" + std::to_string(t.batches) +
         ",\"cells_evaluated\":" + std::to_string(t.cells_evaluated) +
         ",\"rows_flushed\":" + std::to_string(t.rows_flushed) + "}";
}

void SweepServer::start() {
  if (impl_->started) return;
  impl_->started = true;
  // A client that disconnects mid-stream must surface as a write error,
  // not a process-killing SIGPIPE (send() also passes MSG_NOSIGNAL, but
  // the ignore covers any plain write path).
  std::signal(SIGPIPE, SIG_IGN);
  impl_->service = std::make_unique<SweepService>(impl_->cfg.service);
  if (!impl_->cfg.unix_path.empty()) {
    impl_->unix_listener = listen_unix(impl_->cfg.unix_path);
    impl_->unix_thread = std::thread(
        [impl = impl_.get()] { impl->accept_loop(impl->unix_listener.get()); });
  }
  if (impl_->cfg.tcp_port >= 0) {
    impl_->tcp_listener = listen_tcp(impl_->cfg.tcp_port,
                                     impl_->bound_tcp_port);
    impl_->tcp_thread = std::thread(
        [impl = impl_.get()] { impl->accept_loop(impl->tcp_listener.get()); });
  }
  if (!impl_->cfg.queue_dir.empty()) {
    fs::create_directories(impl_->cfg.queue_dir);
    impl_->scan_thread = std::thread([impl = impl_.get()] {
      impl->scan_loop();
    });
  }
}

void SweepServer::stop() {
  if (!impl_->started || impl_->stopped) return;
  impl_->stopped = true;
  impl_->stop.store(true, std::memory_order_relaxed);
  if (impl_->unix_thread.joinable()) impl_->unix_thread.join();
  if (impl_->tcp_thread.joinable()) impl_->tcp_thread.join();
  if (impl_->scan_thread.joinable()) impl_->scan_thread.join();
  {
    // Connection threads notice the stop flag between commands and finish
    // their in-flight request first (graceful drain).
    std::lock_guard lock(impl_->conn_mu);
    for (auto& t : impl_->connections)
      if (t.joinable()) t.join();
    impl_->connections.clear();
  }
  if (impl_->service) impl_->service->drain_and_stop();
  impl_->unix_listener.reset();
  impl_->tcp_listener.reset();
  if (!impl_->cfg.unix_path.empty()) ::unlink(impl_->cfg.unix_path.c_str());
}

void SweepServer::Impl::accept_loop(int listen_fd) {
  while (!stop.load(std::memory_order_relaxed)) {
    Fd conn = accept_with_timeout(listen_fd, 100, &stop);
    if (!conn.valid()) continue;
    std::lock_guard lock(conn_mu);
    connections.emplace_back(
        [this, fd = std::move(conn)]() mutable { handle_connection(std::move(fd)); });
  }
}

void SweepServer::Impl::serve_request(int fd, const std::string& line) {
  RequestSpec spec;
  try {
    spec = parse_request_line(line);
  } catch (const svc_error& e) {
    write_line(fd, err_line(e.code(), e.what()));
    return;
  } catch (const std::exception& e) {
    write_line(fd, err_line("bad-request", e.what()));
    return;
  }

  auto frame = std::make_unique<FrameBuf>(fd);
  std::ostream os(frame.get());
  RequestHandle handle;
  try {
    handle = service->submit(spec, make_sink(spec.sink, os, true));
  } catch (const svc_error& e) {
    write_line(fd, err_line(e.code(), e.what()));
    return;
  } catch (const std::exception& e) {
    write_line(fd, err_line("bad-request", e.what()));
    return;
  }

  if (!write_line(fd, "ok id=" + std::to_string(handle.id()) +
                          " cells=" + std::to_string(spec.cells()))) {
    handle.cancel();
  }
  frame->enable();

  // Stream until done, cancelling if the client walks away. Server
  // shutdown does NOT cancel: drain finishes admitted work.
  while (!handle.wait_for(0.05)) {
    if (frame->broken() || peer_closed(fd)) handle.cancel();
  }
  os.flush();  // residual partial frame (e.g. CSV without end-flush)

  const RequestMetrics& m = handle.wait();
  if (m.failed) {
    write_line(fd, err_line(m.error_code, m.error_message));
    return;
  }
  if (m.cancelled) {
    write_line(fd, err_line("cancelled", "request cancelled"));
    return;
  }
  write_line(fd, "trailer " + trailer_json(m));
  write_line(fd, "end id=" + std::to_string(m.id));
}

void SweepServer::Impl::handle_connection(Fd fd) {
  LineReader reader(fd.get());
  std::string line;
  while (!stop.load(std::memory_order_relaxed)) {
    const LineReader::Status status = reader.read_line(line, &stop);
    if (status == LineReader::Status::TooLong) {
      write_line(fd.get(), err_line("line-too-long",
                                    "request line exceeds " +
                                        std::to_string(kMaxLineBytes) +
                                        " bytes"));
      continue;
    }
    if (status != LineReader::Status::Ok) break;
    // Cheap verb dispatch; everything else is the sweep grammar.
    std::string trimmed = line;
    trimmed.erase(0, trimmed.find_first_not_of(" \t\r"));
    if (trimmed.empty()) continue;
    if (trimmed == "ping") {
      write_line(fd.get(), "ok pong");
    } else if (trimmed == "stats") {
      write_line(fd.get(), "ok " + [this] {
        const ServiceTotals t = service->totals();
        return "{\"admitted\":" + std::to_string(t.admitted) +
               ",\"completed\":" + std::to_string(t.completed) +
               ",\"rejected_full\":" + std::to_string(t.rejected_full) +
               ",\"failed\":" + std::to_string(t.failed) +
               ",\"cancelled\":" + std::to_string(t.cancelled) + "}";
      }());
    } else if (trimmed == "quit") {
      write_line(fd.get(), "ok bye");
      break;
    } else {
      serve_request(fd.get(), trimmed);
    }
  }
}

// ---- Drop-directory scanner ------------------------------------------------

void SweepServer::Impl::scan_loop() {
  struct Pending {
    RequestHandle handle;
    std::unique_ptr<std::ofstream> out;
    fs::path stem;  ///< queue_dir/NAME (no extension)
  };
  std::vector<Pending> pending;

  const auto reap = [&](bool wait_all) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (!wait_all && !it->handle.finished()) {
        ++it;
        continue;
      }
      const RequestMetrics& m = it->handle.wait();
      it->out->flush();
      it->out.reset();
      std::ofstream trailer(it->stem.string() + ".trailer.json");
      trailer << trailer_json(m) << '\n';
      fs::remove(fs::path(it->stem.string() + ".work"));
      it = pending.erase(it);
    }
  };

  while (true) {
    const bool stopping = stop.load(std::memory_order_relaxed);

    std::vector<fs::path> reqs;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(cfg.queue_dir, ec))
      if (entry.path().extension() == ".req") reqs.push_back(entry.path());
    std::sort(reqs.begin(), reqs.end());

    for (const auto& req_path : reqs) {
      if (stopping) break;  // a draining server stops claiming new files
      fs::path stem = req_path;
      stem.replace_extension();
      const fs::path work = fs::path(stem.string() + ".work");
      std::error_code rename_ec;
      fs::rename(req_path, work, rename_ec);
      if (rename_ec) continue;  // claimed by someone else / vanished

      std::string line;
      {
        std::ifstream in(work);
        std::getline(in, line);
      }
      const auto reject = [&](const std::string& code,
                              const std::string& msg) {
        std::ofstream err(stem.string() + ".err");
        err << err_line(code, msg) << '\n';
        fs::remove(work);
      };
      RequestSpec spec;
      try {
        spec = parse_request_line(line);
      } catch (const svc_error& e) {
        reject(e.code(), e.what());
        continue;
      } catch (const std::exception& e) {
        reject("bad-request", e.what());
        continue;
      }
      auto out = std::make_unique<std::ofstream>(
          stem.string() + ".out", std::ios::binary | std::ios::trunc);
      if (!*out) {
        reject("sink-error", "cannot open " + stem.string() + ".out");
        continue;
      }
      try {
        Pending p;
        p.handle = service->submit(spec, make_sink(spec.sink, *out, true));
        p.out = std::move(out);
        p.stem = stem;
        pending.push_back(std::move(p));
      } catch (const svc_error& e) {
        if (e.code() == "queue-full") {
          // Backpressure: un-claim and retry on a later scan.
          fs::rename(work, req_path, rename_ec);
        } else {
          reject(e.code(), e.what());
        }
      }
    }

    reap(/*wait_all=*/stopping);
    if (stopping && pending.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.poll_ms));
  }
}

}  // namespace abftc::svc

# Empty dependencies file for example_abft_lu_recovery.
# This may be replaced when dependencies are built.

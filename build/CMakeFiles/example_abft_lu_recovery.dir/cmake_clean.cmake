file(REMOVE_RECURSE
  "CMakeFiles/example_abft_lu_recovery.dir/examples/abft_lu_recovery.cpp.o"
  "CMakeFiles/example_abft_lu_recovery.dir/examples/abft_lu_recovery.cpp.o.d"
  "example_abft_lu_recovery"
  "example_abft_lu_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_abft_lu_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

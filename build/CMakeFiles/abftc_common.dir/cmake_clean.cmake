file(REMOVE_RECURSE
  "CMakeFiles/abftc_common.dir/src/common/cli.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/cli.cpp.o.d"
  "CMakeFiles/abftc_common.dir/src/common/crc32.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/crc32.cpp.o.d"
  "CMakeFiles/abftc_common.dir/src/common/rng.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/rng.cpp.o.d"
  "CMakeFiles/abftc_common.dir/src/common/stats.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/stats.cpp.o.d"
  "CMakeFiles/abftc_common.dir/src/common/table.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/table.cpp.o.d"
  "CMakeFiles/abftc_common.dir/src/common/thread_pool.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/thread_pool.cpp.o.d"
  "CMakeFiles/abftc_common.dir/src/common/time_units.cpp.o"
  "CMakeFiles/abftc_common.dir/src/common/time_units.cpp.o.d"
  "libabftc_common.a"
  "libabftc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

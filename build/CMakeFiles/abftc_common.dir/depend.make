# Empty dependencies file for abftc_common.
# This may be replaced when dependencies are built.

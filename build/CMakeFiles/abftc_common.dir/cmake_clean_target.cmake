file(REMOVE_RECURSE
  "libabftc_common.a"
)

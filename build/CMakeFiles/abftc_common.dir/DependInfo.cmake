
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "CMakeFiles/abftc_common.dir/src/common/cli.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/cli.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "CMakeFiles/abftc_common.dir/src/common/crc32.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/crc32.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/abftc_common.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/abftc_common.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/abftc_common.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "CMakeFiles/abftc_common.dir/src/common/thread_pool.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/thread_pool.cpp.o.d"
  "/root/repo/src/common/time_units.cpp" "CMakeFiles/abftc_common.dir/src/common/time_units.cpp.o" "gcc" "CMakeFiles/abftc_common.dir/src/common/time_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

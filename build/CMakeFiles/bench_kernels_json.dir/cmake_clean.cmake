file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels_json.dir/bench/bench_kernels_json.cpp.o"
  "CMakeFiles/bench_kernels_json.dir/bench/bench_kernels_json.cpp.o.d"
  "bench_kernels_json"
  "bench_kernels_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

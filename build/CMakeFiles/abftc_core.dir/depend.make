# Empty dependencies file for abftc_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libabftc_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/abftc_core.dir/src/core/monte_carlo.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/monte_carlo.cpp.o.d"
  "CMakeFiles/abftc_core.dir/src/core/params.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/params.cpp.o.d"
  "CMakeFiles/abftc_core.dir/src/core/phase_model.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/phase_model.cpp.o.d"
  "CMakeFiles/abftc_core.dir/src/core/protocol_models.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/protocol_models.cpp.o.d"
  "CMakeFiles/abftc_core.dir/src/core/runtime.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/runtime.cpp.o.d"
  "CMakeFiles/abftc_core.dir/src/core/scaling.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/scaling.cpp.o.d"
  "CMakeFiles/abftc_core.dir/src/core/simulate.cpp.o"
  "CMakeFiles/abftc_core.dir/src/core/simulate.cpp.o.d"
  "libabftc_core.a"
  "libabftc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/monte_carlo.cpp" "CMakeFiles/abftc_core.dir/src/core/monte_carlo.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/monte_carlo.cpp.o.d"
  "/root/repo/src/core/params.cpp" "CMakeFiles/abftc_core.dir/src/core/params.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/params.cpp.o.d"
  "/root/repo/src/core/phase_model.cpp" "CMakeFiles/abftc_core.dir/src/core/phase_model.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/phase_model.cpp.o.d"
  "/root/repo/src/core/protocol_models.cpp" "CMakeFiles/abftc_core.dir/src/core/protocol_models.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/protocol_models.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "CMakeFiles/abftc_core.dir/src/core/runtime.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/runtime.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "CMakeFiles/abftc_core.dir/src/core/scaling.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/scaling.cpp.o.d"
  "/root/repo/src/core/simulate.cpp" "CMakeFiles/abftc_core.dir/src/core/simulate.cpp.o" "gcc" "CMakeFiles/abftc_core.dir/src/core/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/abftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/abftc_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/abftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_phase_model.dir/tests/test_phase_model.cpp.o"
  "CMakeFiles/test_phase_model.dir/tests/test_phase_model.cpp.o.d"
  "test_phase_model"
  "test_phase_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

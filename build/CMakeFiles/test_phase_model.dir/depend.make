# Empty dependencies file for test_phase_model.
# This may be replaced when dependencies are built.

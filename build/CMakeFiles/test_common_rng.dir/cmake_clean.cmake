file(REMOVE_RECURSE
  "CMakeFiles/test_common_rng.dir/tests/test_common_rng.cpp.o"
  "CMakeFiles/test_common_rng.dir/tests/test_common_rng.cpp.o.d"
  "test_common_rng"
  "test_common_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abftc_abft.
# This may be replaced when dependencies are built.

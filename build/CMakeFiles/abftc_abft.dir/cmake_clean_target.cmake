file(REMOVE_RECURSE
  "libabftc_abft.a"
)

CMakeFiles/abftc_abft.dir/src/abft/version.cpp.o: \
 /root/repo/src/abft/version.cpp /usr/include/stdc-predef.h \
 /root/repo/src/abft/version.hpp

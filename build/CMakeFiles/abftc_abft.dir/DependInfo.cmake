
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abft/abft_cholesky.cpp" "CMakeFiles/abftc_abft.dir/src/abft/abft_cholesky.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/abft_cholesky.cpp.o.d"
  "/root/repo/src/abft/abft_gemm.cpp" "CMakeFiles/abftc_abft.dir/src/abft/abft_gemm.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/abft_gemm.cpp.o.d"
  "/root/repo/src/abft/abft_lu.cpp" "CMakeFiles/abftc_abft.dir/src/abft/abft_lu.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/abft_lu.cpp.o.d"
  "/root/repo/src/abft/abft_qr.cpp" "CMakeFiles/abftc_abft.dir/src/abft/abft_qr.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/abft_qr.cpp.o.d"
  "/root/repo/src/abft/blas.cpp" "CMakeFiles/abftc_abft.dir/src/abft/blas.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/blas.cpp.o.d"
  "/root/repo/src/abft/checksum.cpp" "CMakeFiles/abftc_abft.dir/src/abft/checksum.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/checksum.cpp.o.d"
  "/root/repo/src/abft/grid.cpp" "CMakeFiles/abftc_abft.dir/src/abft/grid.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/grid.cpp.o.d"
  "/root/repo/src/abft/kernels.cpp" "CMakeFiles/abftc_abft.dir/src/abft/kernels.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/kernels.cpp.o.d"
  "/root/repo/src/abft/matrix.cpp" "CMakeFiles/abftc_abft.dir/src/abft/matrix.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/matrix.cpp.o.d"
  "/root/repo/src/abft/version.cpp" "CMakeFiles/abftc_abft.dir/src/abft/version.cpp.o" "gcc" "CMakeFiles/abftc_abft.dir/src/abft/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/abftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

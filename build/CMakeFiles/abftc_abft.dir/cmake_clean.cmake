file(REMOVE_RECURSE
  "CMakeFiles/abftc_abft.dir/src/abft/abft_cholesky.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_cholesky.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_gemm.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_gemm.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_lu.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_lu.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_qr.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/abft_qr.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/blas.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/blas.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/checksum.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/checksum.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/grid.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/grid.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/kernels.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/kernels.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/matrix.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/matrix.cpp.o.d"
  "CMakeFiles/abftc_abft.dir/src/abft/version.cpp.o"
  "CMakeFiles/abftc_abft.dir/src/abft/version.cpp.o.d"
  "libabftc_abft.a"
  "libabftc_abft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftc_abft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

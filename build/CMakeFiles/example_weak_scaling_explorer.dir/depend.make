# Empty dependencies file for example_weak_scaling_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_weak_scaling_explorer.dir/examples/weak_scaling_explorer.cpp.o"
  "CMakeFiles/example_weak_scaling_explorer.dir/examples/weak_scaling_explorer.cpp.o.d"
  "example_weak_scaling_explorer"
  "example_weak_scaling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_weak_scaling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

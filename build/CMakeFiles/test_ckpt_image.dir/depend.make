# Empty dependencies file for test_ckpt_image.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_image.dir/tests/test_ckpt_image.cpp.o"
  "CMakeFiles/test_ckpt_image.dir/tests/test_ckpt_image.cpp.o.d"
  "test_ckpt_image"
  "test_ckpt_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abftc_sim.dir/src/sim/des_periodic.cpp.o"
  "CMakeFiles/abftc_sim.dir/src/sim/des_periodic.cpp.o.d"
  "CMakeFiles/abftc_sim.dir/src/sim/engine.cpp.o"
  "CMakeFiles/abftc_sim.dir/src/sim/engine.cpp.o.d"
  "CMakeFiles/abftc_sim.dir/src/sim/event_queue.cpp.o"
  "CMakeFiles/abftc_sim.dir/src/sim/event_queue.cpp.o.d"
  "CMakeFiles/abftc_sim.dir/src/sim/failures.cpp.o"
  "CMakeFiles/abftc_sim.dir/src/sim/failures.cpp.o.d"
  "CMakeFiles/abftc_sim.dir/src/sim/segments.cpp.o"
  "CMakeFiles/abftc_sim.dir/src/sim/segments.cpp.o.d"
  "libabftc_sim.a"
  "libabftc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

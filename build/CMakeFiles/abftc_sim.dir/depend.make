# Empty dependencies file for abftc_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libabftc_sim.a"
)

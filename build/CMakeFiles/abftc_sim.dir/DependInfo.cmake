
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/des_periodic.cpp" "CMakeFiles/abftc_sim.dir/src/sim/des_periodic.cpp.o" "gcc" "CMakeFiles/abftc_sim.dir/src/sim/des_periodic.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/abftc_sim.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/abftc_sim.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/abftc_sim.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/abftc_sim.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/failures.cpp" "CMakeFiles/abftc_sim.dir/src/sim/failures.cpp.o" "gcc" "CMakeFiles/abftc_sim.dir/src/sim/failures.cpp.o.d"
  "/root/repo/src/sim/segments.cpp" "CMakeFiles/abftc_sim.dir/src/sim/segments.cpp.o" "gcc" "CMakeFiles/abftc_sim.dir/src/sim/segments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/abftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

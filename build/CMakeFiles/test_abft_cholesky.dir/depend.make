# Empty dependencies file for test_abft_cholesky.
# This may be replaced when dependencies are built.

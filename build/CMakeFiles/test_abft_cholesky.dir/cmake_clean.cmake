file(REMOVE_RECURSE
  "CMakeFiles/test_abft_cholesky.dir/tests/test_abft_cholesky.cpp.o"
  "CMakeFiles/test_abft_cholesky.dir/tests/test_abft_cholesky.cpp.o.d"
  "test_abft_cholesky"
  "test_abft_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

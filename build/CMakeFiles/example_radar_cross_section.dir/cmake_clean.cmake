file(REMOVE_RECURSE
  "CMakeFiles/example_radar_cross_section.dir/examples/radar_cross_section.cpp.o"
  "CMakeFiles/example_radar_cross_section.dir/examples/radar_cross_section.cpp.o.d"
  "example_radar_cross_section"
  "example_radar_cross_section.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_radar_cross_section.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

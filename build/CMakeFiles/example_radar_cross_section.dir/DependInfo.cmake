
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/radar_cross_section.cpp" "CMakeFiles/example_radar_cross_section.dir/examples/radar_cross_section.cpp.o" "gcc" "CMakeFiles/example_radar_cross_section.dir/examples/radar_cross_section.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/abftc_abft.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/abftc_core.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/abftc_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/abftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/abftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

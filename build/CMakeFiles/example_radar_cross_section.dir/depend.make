# Empty dependencies file for example_radar_cross_section.
# This may be replaced when dependencies are built.

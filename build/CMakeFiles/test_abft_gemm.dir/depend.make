# Empty dependencies file for test_abft_gemm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_abft_gemm.dir/tests/test_abft_gemm.cpp.o"
  "CMakeFiles/test_abft_gemm.dir/tests/test_abft_gemm.cpp.o.d"
  "test_abft_gemm"
  "test_abft_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

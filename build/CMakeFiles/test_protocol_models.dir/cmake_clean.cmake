file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_models.dir/tests/test_protocol_models.cpp.o"
  "CMakeFiles/test_protocol_models.dir/tests/test_protocol_models.cpp.o.d"
  "test_protocol_models"
  "test_protocol_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

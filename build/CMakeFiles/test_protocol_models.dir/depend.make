# Empty dependencies file for test_protocol_models.
# This may be replaced when dependencies are built.

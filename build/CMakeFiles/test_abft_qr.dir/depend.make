# Empty dependencies file for test_abft_qr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_abft_qr.dir/tests/test_abft_qr.cpp.o"
  "CMakeFiles/test_abft_qr.dir/tests/test_abft_qr.cpp.o.d"
  "test_abft_qr"
  "test_abft_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

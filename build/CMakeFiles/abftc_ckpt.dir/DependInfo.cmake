
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/image.cpp" "CMakeFiles/abftc_ckpt.dir/src/ckpt/image.cpp.o" "gcc" "CMakeFiles/abftc_ckpt.dir/src/ckpt/image.cpp.o.d"
  "/root/repo/src/ckpt/storage.cpp" "CMakeFiles/abftc_ckpt.dir/src/ckpt/storage.cpp.o" "gcc" "CMakeFiles/abftc_ckpt.dir/src/ckpt/storage.cpp.o.d"
  "/root/repo/src/ckpt/version.cpp" "CMakeFiles/abftc_ckpt.dir/src/ckpt/version.cpp.o" "gcc" "CMakeFiles/abftc_ckpt.dir/src/ckpt/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/abftc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

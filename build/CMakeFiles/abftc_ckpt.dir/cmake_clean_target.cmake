file(REMOVE_RECURSE
  "libabftc_ckpt.a"
)

# Empty dependencies file for abftc_ckpt.
# This may be replaced when dependencies are built.

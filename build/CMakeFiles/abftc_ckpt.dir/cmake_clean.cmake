file(REMOVE_RECURSE
  "CMakeFiles/abftc_ckpt.dir/src/ckpt/image.cpp.o"
  "CMakeFiles/abftc_ckpt.dir/src/ckpt/image.cpp.o.d"
  "CMakeFiles/abftc_ckpt.dir/src/ckpt/storage.cpp.o"
  "CMakeFiles/abftc_ckpt.dir/src/ckpt/storage.cpp.o.d"
  "CMakeFiles/abftc_ckpt.dir/src/ckpt/version.cpp.o"
  "CMakeFiles/abftc_ckpt.dir/src/ckpt/version.cpp.o.d"
  "libabftc_ckpt.a"
  "libabftc_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftc_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

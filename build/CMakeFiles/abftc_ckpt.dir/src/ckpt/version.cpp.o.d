CMakeFiles/abftc_ckpt.dir/src/ckpt/version.cpp.o: \
 /root/repo/src/ckpt/version.cpp /usr/include/stdc-predef.h \
 /root/repo/src/ckpt/version.hpp

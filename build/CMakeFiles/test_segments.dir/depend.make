# Empty dependencies file for test_segments.
# This may be replaced when dependencies are built.

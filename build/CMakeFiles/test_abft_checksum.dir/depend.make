# Empty dependencies file for test_abft_checksum.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_abft_checksum.dir/tests/test_abft_checksum.cpp.o"
  "CMakeFiles/test_abft_checksum.dir/tests/test_abft_checksum.cpp.o.d"
  "test_abft_checksum"
  "test_abft_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

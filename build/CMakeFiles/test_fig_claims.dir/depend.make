# Empty dependencies file for test_fig_claims.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fig_claims.dir/tests/test_fig_claims.cpp.o"
  "CMakeFiles/test_fig_claims.dir/tests/test_fig_claims.cpp.o.d"
  "test_fig_claims"
  "test_fig_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

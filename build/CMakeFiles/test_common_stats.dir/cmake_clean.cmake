file(REMOVE_RECURSE
  "CMakeFiles/test_common_stats.dir/tests/test_common_stats.cpp.o"
  "CMakeFiles/test_common_stats.dir/tests/test_common_stats.cpp.o.d"
  "test_common_stats"
  "test_common_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

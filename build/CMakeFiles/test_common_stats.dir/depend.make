# Empty dependencies file for test_common_stats.
# This may be replaced when dependencies are built.

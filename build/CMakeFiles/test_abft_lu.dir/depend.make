# Empty dependencies file for test_abft_lu.
# This may be replaced when dependencies are built.

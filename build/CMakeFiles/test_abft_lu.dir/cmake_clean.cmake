file(REMOVE_RECURSE
  "CMakeFiles/test_abft_lu.dir/tests/test_abft_lu.cpp.o"
  "CMakeFiles/test_abft_lu.dir/tests/test_abft_lu.cpp.o.d"
  "test_abft_lu"
  "test_abft_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

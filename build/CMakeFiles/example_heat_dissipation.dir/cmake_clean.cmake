file(REMOVE_RECURSE
  "CMakeFiles/example_heat_dissipation.dir/examples/heat_dissipation.cpp.o"
  "CMakeFiles/example_heat_dissipation.dir/examples/heat_dissipation.cpp.o.d"
  "example_heat_dissipation"
  "example_heat_dissipation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heat_dissipation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_heat_dissipation.
# This may be replaced when dependencies are built.
